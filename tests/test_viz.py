"""Tests for the plain-text visualizations (gantt, memory chart)."""

import pytest

from repro.experiments.viz import (
    gantt,
    memory_chart,
    utilization,
    view_accuracy_chart,
)
from repro.matrices import generators as gen
from repro.simcore import TraceRecorder
from repro.solver import SolverConfig, run_factorization
from repro.symbolic import analyze_matrix


@pytest.fixture(scope="module")
def traced_run():
    tree = analyze_matrix(gen.grid_laplacian((12, 12, 4)), name="vgrid")
    trace = TraceRecorder(keep_kinds={"task-start", "task-end"})
    cfg = SolverConfig(record_series=True)
    result = run_factorization(tree, 4, mechanism="increments",
                               strategy="workload", config=cfg, trace=trace)
    return trace, result


class TestGantt:
    def test_one_row_per_process(self, traced_run):
        trace, result = traced_run
        text = gantt(trace, 4, t_end=result.factorization_time)
        lines = text.splitlines()
        assert sum(1 for l in lines if l.startswith("P")) == 4

    def test_contains_task_glyphs(self, traced_run):
        trace, result = traced_run
        text = gantt(trace, 4)
        assert "=" in text  # local tasks always exist

    def test_empty_trace_handled(self):
        text = gantt(TraceRecorder(), 2)
        assert "no task intervals" in text

    def test_width_respected(self, traced_run):
        trace, result = traced_run
        for line in gantt(trace, 4, width=40).splitlines():
            if line.startswith("P"):
                assert len(line) <= 40 + 8


class TestUtilization:
    def test_values_in_unit_interval(self, traced_run):
        trace, result = traced_run
        util = utilization(trace, 4, t_end=result.factorization_time)
        assert len(util) == 4
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in util)

    def test_everyone_did_some_work(self, traced_run):
        trace, result = traced_run
        util = utilization(trace, 4)
        assert min(util) > 0.0

    def test_empty_trace(self):
        assert utilization(TraceRecorder(), 3) == [0.0, 0.0, 0.0]


class TestMemoryChart:
    def test_chart_renders(self, traced_run):
        _, result = traced_run
        text = memory_chart(result.memory_series, title="mem")
        assert "mem" in text
        assert "#" in text

    def test_mean_curve_present(self, traced_run):
        _, result = traced_run
        text = memory_chart(result.memory_series)
        assert "." in text

    def test_no_series_message(self):
        text = memory_chart([])
        assert "record_series" in text

    def test_rank_subset(self, traced_run):
        _, result = traced_run
        text = memory_chart(result.memory_series, ranks=[0])
        assert "#" in text

    def test_peak_scale_matches_result(self, traced_run):
        _, result = traced_run
        text = memory_chart(result.memory_series, height=10)
        # the top axis label is the global peak (within formatting rounding)
        top_label = text.splitlines()[2].split("|")[0].strip()
        assert float(top_label) == pytest.approx(result.peak_active_memory,
                                                 rel=0.01)


class TestViewAccuracyChart:
    SAMPLES = [
        {"time": 0.01, "signed_workload": -0.4, "signed_memory": 0.0},
        {"time": 0.02, "signed_workload": 0.2, "signed_memory": 0.1},
        {"time": 0.04, "signed_workload": -0.1, "signed_memory": 0.0},
    ]

    def test_points_and_title_rendered(self):
        text = view_accuracy_chart(self.SAMPLES, title="verr")
        assert text.splitlines()[0] == "verr"
        assert "*" in text
        assert "3 total" in text

    def test_axis_labels(self):
        text = view_accuracy_chart(self.SAMPLES, height=12)
        lines = text.splitlines()
        rows = lines[2:14]  # title, underline, then `height` plot rows
        # y axis spans [-top, +top] symmetrically
        top = max(abs(s["signed_workload"]) for s in self.SAMPLES)
        assert float(rows[0].split("|")[0]) == pytest.approx(top)
        assert float(rows[-1].split("|")[0]) == pytest.approx(-top)
        # the zero axis row is drawn with '-' inside the plot area
        assert any("-" in r.split("|", 1)[1] for r in rows)
        # x axis ends at the last sample time
        assert "t=0.04s" in lines[-2]

    def test_metric_selector(self):
        text = view_accuracy_chart(self.SAMPLES, metric="memory")
        assert "*" in text

    def test_empty_samples_message(self):
        assert "no view-accuracy samples" in view_accuracy_chart([])

    def test_from_a_real_metrics_run(self):
        from repro.obs import view_accuracy_samples

        tree = analyze_matrix(gen.grid_laplacian((10, 10, 4)), name="vgrid2")
        result = run_factorization(tree, 4, mechanism="naive",
                                   strategy="workload",
                                   config=SolverConfig(metrics=True))
        samples = view_accuracy_samples(result.metrics)
        assert samples, "metrics run produced no view-accuracy samples"
        text = view_accuracy_chart(samples)
        assert "*" in text and "decision" in text
