"""Tests for the plain-text visualizations (gantt, memory chart)."""

import pytest

from repro.experiments.viz import gantt, memory_chart, utilization
from repro.matrices import generators as gen
from repro.simcore import TraceRecorder
from repro.solver import SolverConfig, run_factorization
from repro.symbolic import analyze_matrix


@pytest.fixture(scope="module")
def traced_run():
    tree = analyze_matrix(gen.grid_laplacian((12, 12, 4)), name="vgrid")
    trace = TraceRecorder(keep_kinds={"task-start", "task-end"})
    cfg = SolverConfig(record_series=True)
    result = run_factorization(tree, 4, mechanism="increments",
                               strategy="workload", config=cfg, trace=trace)
    return trace, result


class TestGantt:
    def test_one_row_per_process(self, traced_run):
        trace, result = traced_run
        text = gantt(trace, 4, t_end=result.factorization_time)
        lines = text.splitlines()
        assert sum(1 for l in lines if l.startswith("P")) == 4

    def test_contains_task_glyphs(self, traced_run):
        trace, result = traced_run
        text = gantt(trace, 4)
        assert "=" in text  # local tasks always exist

    def test_empty_trace_handled(self):
        text = gantt(TraceRecorder(), 2)
        assert "no task intervals" in text

    def test_width_respected(self, traced_run):
        trace, result = traced_run
        for line in gantt(trace, 4, width=40).splitlines():
            if line.startswith("P"):
                assert len(line) <= 40 + 8


class TestUtilization:
    def test_values_in_unit_interval(self, traced_run):
        trace, result = traced_run
        util = utilization(trace, 4, t_end=result.factorization_time)
        assert len(util) == 4
        assert all(0.0 <= u <= 1.0 + 1e-9 for u in util)

    def test_everyone_did_some_work(self, traced_run):
        trace, result = traced_run
        util = utilization(trace, 4)
        assert min(util) > 0.0

    def test_empty_trace(self):
        assert utilization(TraceRecorder(), 3) == [0.0, 0.0, 0.0]


class TestMemoryChart:
    def test_chart_renders(self, traced_run):
        _, result = traced_run
        text = memory_chart(result.memory_series, title="mem")
        assert "mem" in text
        assert "#" in text

    def test_mean_curve_present(self, traced_run):
        _, result = traced_run
        text = memory_chart(result.memory_series)
        assert "." in text

    def test_no_series_message(self):
        text = memory_chart([])
        assert "record_series" in text

    def test_rank_subset(self, traced_run):
        _, result = traced_run
        text = memory_chart(result.memory_series, ranks=[0])
        assert "#" in text

    def test_peak_scale_matches_result(self, traced_run):
        _, result = traced_run
        text = memory_chart(result.memory_series, height=10)
        # the top axis label is the global peak (within formatting rounding)
        top_label = text.splitlines()[2].split("|")[0].strip()
        assert float(top_label) == pytest.approx(result.peak_active_memory,
                                                 rel=0.01)
