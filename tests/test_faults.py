"""Unit tests of the fault-injection subsystem (``repro.faults``).

Covers the plan algebra (matching, canonical description, cache tags), the
injector's message faults (deterministic seeded drops / duplicates / delays,
scripted one-shot faults), its process faults (fail-stop crashes, slowdown
windows), and the two invariants everything else relies on:

* faults are a pure function of (seed, plan) — replays are identical;
* a world with **no** injector and a world with an injector holding an
  empty-ish plan deliver every message at exactly the same times.
"""

import pytest

from repro.faults import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    LinkFault,
    ScriptedFault,
    SlowdownFault,
)
from repro.simcore import NetworkConfig
from repro.simcore.errors import ChannelError
from repro.simcore.network import Channel, Payload

from helpers import make_world


class Ping(Payload):
    TYPE = "ping"

    def __init__(self, n=0):
        self.n = n

    def nbytes(self):
        return 8


def world(nprocs=3, **kw):
    return make_world(nprocs, None, config=NetworkConfig(**kw))


# ---------------------------------------------------------------- the plan


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty()
        assert plan.tag() == "nofaults"

    def test_builders_are_not_empty(self):
        assert not FaultPlan.uniform_loss(0.1).is_empty()
        assert not FaultPlan.chaos().is_empty()
        assert not FaultPlan(crashes=(CrashFault(0, 1.0),)).is_empty()
        assert not FaultPlan(slowdowns=(SlowdownFault(0, 0.0, 1.0),)).is_empty()

    def test_uniform_loss_validates_rate(self):
        with pytest.raises(ValueError):
            FaultPlan.uniform_loss(1.5)
        with pytest.raises(ValueError):
            FaultPlan.uniform_loss(-0.1)

    def test_tag_is_deterministic_and_discriminating(self):
        a = FaultPlan.uniform_loss(0.05)
        assert a.tag() == FaultPlan.uniform_loss(0.05).tag()
        assert a.tag() != FaultPlan.uniform_loss(0.06).tag()
        assert a.tag() != FaultPlan.uniform_loss(0.05, seed_salt=1).tag()
        assert a.tag() != FaultPlan.uniform_loss(0.05, channel=None).tag()
        assert a.tag().startswith("faults-")

    def test_describe_mentions_every_rule(self):
        plan = FaultPlan(
            link_faults=(LinkFault(src=1, dst=2, drop_prob=0.5),),
            scripted=(ScriptedFault(nth=3, action="drop"),),
            crashes=(CrashFault(rank=4, time=0.25),),
            slowdowns=(SlowdownFault(rank=5, start=0.1, duration=0.2, factor=3.0),),
            seed_salt=7,
        )
        text = plan.describe()
        for frag in ("salt=7", "link(1->2", "script(drop#3", "crash(P4",
                     "slow(P5"):
            assert frag in text, text

    def test_link_fault_matching(self):
        any_link = LinkFault(drop_prob=1.0)
        assert any_link.matches(0, 1, Channel.STATE)
        assert any_link.matches(5, 2, Channel.DATA)
        narrow = LinkFault(src=1, dst=2, channel=Channel.STATE, drop_prob=1.0)
        assert narrow.matches(1, 2, Channel.STATE)
        assert not narrow.matches(2, 1, Channel.STATE)
        assert not narrow.matches(1, 2, Channel.DATA)


# ---------------------------------------------------------- message faults


class TestMessageFaults:
    def _send_n(self, net, n, src=0, dst=1, channel=Channel.DATA):
        for i in range(n):
            net.send(src, dst, channel, Ping(i))

    def test_no_injector_is_reliable(self):
        sim, net, procs = world()
        self._send_n(net, 10)
        sim.run()
        assert [e.payload.n for e in procs[1].data_received] == list(range(10))

    def test_certain_drop_loses_everything(self):
        sim, net, procs = world()
        inj = FaultInjector(sim, FaultPlan.uniform_loss(1.0, channel=None))
        net.install_injector(inj)
        self._send_n(net, 10)
        sim.run()
        assert procs[1].data_received == []
        assert inj.stats.dropped == 10
        assert inj.stats.dropped_by_type["ping"] == 10

    def test_channel_filter(self):
        """STATE-only loss must not touch the DATA channel."""
        sim, net, procs = world()
        net.install_injector(
            FaultInjector(sim, FaultPlan.uniform_loss(1.0, channel=Channel.STATE))
        )
        self._send_n(net, 5, channel=Channel.DATA)
        sim.run()
        assert len(procs[1].data_received) == 5

    def test_drops_are_deterministic_per_seed_and_salt(self):
        def received(seed, salt):
            sim, net, procs = make_world(
                3, None, seed=seed, config=NetworkConfig()
            )
            inj = FaultInjector(
                sim, FaultPlan.uniform_loss(0.5, channel=None, seed_salt=salt)
            )
            net.install_injector(inj)
            self._send_n(net, 40)
            sim.run()
            return [e.payload.n for e in procs[1].data_received]

        assert received(0, 0) == received(0, 0)
        assert received(0, 0) != received(0, 1)  # salt: replication axis
        assert received(0, 0) != received(7, 0)  # seed: a different run

    def test_duplicates_arrive_twice_and_later(self):
        sim, net, procs = world()
        inj = FaultInjector(
            sim,
            FaultPlan(link_faults=(
                LinkFault(channel=None, dup_prob=1.0, delay=1e-3),
            )),
        )
        net.install_injector(inj)
        net.send(0, 1, Channel.DATA, Ping(0))
        sim.run()
        assert [e.payload.n for e in procs[1].data_received] == [0, 0]
        assert inj.stats.duplicated == 1

    def test_delay_fault_postpones_delivery(self):
        latency = 1e-4
        sim, net, procs = world(latency=latency)
        net.install_injector(FaultInjector(
            sim,
            FaultPlan(link_faults=(
                LinkFault(channel=None, delay_prob=1.0, delay=5e-3),
            )),
        ))
        net.send(0, 1, Channel.DATA, Ping(0))
        sim.run()
        # fault-free delivery would land at ~latency; the fault adds 5e-3
        assert sim.now == pytest.approx(latency + 5e-3, abs=1e-4)

    def test_scripted_drop_hits_exactly_the_nth(self):
        sim, net, procs = world()
        net.install_injector(FaultInjector(
            sim, FaultPlan(scripted=(ScriptedFault(nth=3, action="drop"),))
        ))
        self._send_n(net, 5)
        sim.run()
        assert [e.payload.n for e in procs[1].data_received] == [0, 1, 3, 4]

    def test_scripted_rules_are_link_selective(self):
        sim, net, procs = world()
        net.install_injector(FaultInjector(
            sim,
            FaultPlan(scripted=(
                ScriptedFault(nth=1, action="drop", src=0, dst=2),
            )),
        ))
        net.send(0, 1, Channel.DATA, Ping(0))  # not matched: 0 -> 1
        net.send(0, 2, Channel.DATA, Ping(1))  # dropped: first 0 -> 2
        net.send(0, 2, Channel.DATA, Ping(2))  # second 0 -> 2: passes
        sim.run()
        assert [e.payload.n for e in procs[1].data_received] == [0]
        assert [e.payload.n for e in procs[2].data_received] == [2]

    def test_scripted_unknown_action_raises(self):
        sim, net, procs = world()
        net.install_injector(FaultInjector(
            sim, FaultPlan(scripted=(ScriptedFault(nth=1, action="mangle"),))
        ))
        with pytest.raises(ValueError):
            net.send(0, 1, Channel.DATA, Ping(0))

    def test_double_install_rejected(self):
        sim, net, procs = world()
        net.install_injector(FaultInjector(sim, FaultPlan.uniform_loss(0.1)))
        with pytest.raises(ChannelError):
            net.install_injector(FaultInjector(sim, FaultPlan()))

    def test_empty_plan_injector_changes_nothing(self):
        """Delivery times with an empty-plan injector are byte-identical to
        no injector at all (the fault-free guarantee, network level)."""

        def arrivals(install):
            sim, net, procs = world(latency=3e-4)
            if install:
                net.install_injector(FaultInjector(sim, FaultPlan()))
            times = []
            procs[1].handle_data = lambda env: times.append(sim.now)
            self._send_n(net, 8)
            sim.run()
            return times

        assert arrivals(False) == arrivals(True)


# ---------------------------------------------------------- process faults


class TestProcessFaults:
    def test_crash_silences_the_victim(self):
        sim, net, procs = world()
        inj = FaultInjector(
            sim, FaultPlan(crashes=(CrashFault(rank=1, time=1e-3),))
        )
        net.install_injector(inj)
        inj.install_process_faults(procs)
        net.send(0, 1, Channel.DATA, Ping(0))        # before the crash
        sim.schedule_at(2e-3, lambda: net.send(0, 1, Channel.DATA, Ping(1)))
        sim.run()
        assert procs[1].crashed
        assert inj.stats.crashes == 1
        assert inj.crashed_ranks == frozenset({1})
        # only the pre-crash message was treated
        assert [e.payload.n for e in procs[1].data_received] == [0]

    def test_crash_is_idempotent(self):
        sim, net, procs = world()
        inj = FaultInjector(sim, FaultPlan(
            crashes=(CrashFault(1, 1e-3), CrashFault(1, 2e-3))
        ))
        inj.install_process_faults(procs)
        sim.run()
        assert inj.stats.crashes == 1

    def test_crash_unknown_rank_rejected(self):
        sim, net, procs = world()
        inj = FaultInjector(sim, FaultPlan(crashes=(CrashFault(9, 1.0),)))
        with pytest.raises(ValueError):
            inj.install_process_faults(procs)

    def test_slowdown_window_scales_task_durations(self):
        sim, net, procs = world()
        inj = FaultInjector(sim, FaultPlan(
            slowdowns=(SlowdownFault(rank=0, start=0.0, duration=1.0, factor=4.0),)
        ))
        inj.install_process_faults(procs)
        done = []
        procs[0].queue_task(0.01, on_complete=lambda: done.append(sim.now))
        sim.run()
        assert inj.stats.slowdowns == 1
        assert done and done[0] == pytest.approx(0.04, rel=1e-6)
        assert procs[0].speed_factor == 1.0  # window closed

    def test_slowdown_after_window_is_normal_speed(self):
        sim, net, procs = world()
        inj = FaultInjector(sim, FaultPlan(
            slowdowns=(SlowdownFault(rank=0, start=0.0, duration=1e-3, factor=4.0),)
        ))
        inj.install_process_faults(procs)
        done = []
        sim.schedule_at(
            2e-3,
            lambda: procs[0].queue_task(
                0.01, on_complete=lambda: done.append(sim.now)
            ),
        )
        sim.run()
        assert done and done[0] == pytest.approx(2e-3 + 0.01, rel=1e-6)


# -------------------------------------------------------------- the traces


def test_faults_are_traced():
    from repro.simcore.trace import TraceRecorder

    sim, net, procs = world()
    sim.trace = TraceRecorder()
    inj = FaultInjector(sim, FaultPlan(
        scripted=(ScriptedFault(nth=1, action="drop"),),
        crashes=(CrashFault(rank=2, time=1e-3),),
    ))
    net.install_injector(inj)
    inj.install_process_faults(procs)
    net.send(0, 1, Channel.DATA, Ping(0))
    sim.run()
    kinds = [e.detail for e in sim.trace.filter(kind="fault")]
    assert any(d.startswith("drop(scripted):ping") for d in kinds), kinds
    assert "crash:P2" in kinds
