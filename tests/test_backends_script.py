"""Tests for workload-script recording, serialization, and DES replay."""

import pytest

from repro import run_factorization
from repro.backends import ScriptRecorder, WorkloadScript, create_backend
from repro.backends.script import DecisionEvent, ReportEvent
from repro.conformance import EXACT_TYPES
from repro.matrices import generators as gen
from repro.solver.driver import SolverConfig
from repro.symbolic import analyze_matrix

NPROCS = 4


@pytest.fixture(scope="module")
def tree():
    return analyze_matrix(gen.grid_laplacian((10, 10, 4)), name="scriptgrid")


def record(tree, mechanism, seed=0):
    rec = ScriptRecorder()
    result = run_factorization(
        tree, NPROCS, mechanism=mechanism,
        config=SolverConfig(seed=seed), recorder=rec,
    )
    return rec.script(), result


class TestRecorder:
    def test_recorder_is_a_pure_observer(self, tree):
        """A run with a recorder produces the identical result object —
        the hook must never perturb the simulation."""
        plain = run_factorization(tree, NPROCS, mechanism="increments",
                                  config=SolverConfig(seed=0))
        _, recorded = record(tree, "increments")
        assert recorded.factorization_time == plain.factorization_time
        assert recorded.messages_by_type == plain.messages_by_type
        assert recorded.decisions == plain.decisions

    def test_transcript_shape(self, tree):
        script, result = record(tree, "increments")
        assert script.nprocs == NPROCS
        assert script.mechanism == "increments"
        assert len(script.events) == NPROCS
        assert script.decision_count() == result.decisions
        assert script.makespan == pytest.approx(result.factorization_time)
        # events are per-rank time-ordered
        for evs in script.events:
            times = [e.time for e in evs]
            assert times == sorted(times)
        kinds = {type(e) for evs in script.events for e in evs}
        assert ReportEvent in kinds

    def test_decision_events_carry_shares(self, tree):
        script, result = record(tree, "snapshot")
        decisions = [e for evs in script.events
                     for e in evs if isinstance(e, DecisionEvent)]
        assert len(decisions) == result.decisions
        for d in decisions:
            assert d.shares  # a dynamic decision always selects slaves
            for rank, w, m in d.shares:
                assert 0 <= rank < NPROCS
                assert w >= 0.0

    def test_json_round_trip(self, tree):
        script, _ = record(tree, "gossip")
        back = WorkloadScript.from_json(script.to_json())
        assert back == script

    def test_version_check(self, tree):
        script, _ = record(tree, "naive")
        d = script.to_dict()
        d["version"] = 99
        with pytest.raises(ValueError):
            WorkloadScript.from_dict(d)

    def test_replay_config_forces_determinism_knobs(self, tree):
        script, _ = record(tree, "increments")
        cfg = script.mechanism_config()
        assert cfg.no_more_master is False
        assert cfg.resilience is False
        assert cfg.threaded is False


class TestDesReplay:
    """The DES backend replays the transcript with exact deterministic
    counts (the reference half of the conformance suite)."""

    @pytest.mark.parametrize("mechanism", sorted(EXACT_TYPES))
    def test_replay_matches_script_decisions(self, tree, mechanism):
        script, _ = record(tree, mechanism)
        out = create_backend("des").execute(script)
        assert out.decisions == script.decision_count()
        assert out.nprocs == NPROCS

    def test_replay_is_deterministic(self, tree):
        script, _ = record(tree, "tree_agg")
        a = create_backend("des").execute(script)
        b = create_backend("des").execute(script)
        assert a.messages_by_type == b.messages_by_type
        assert a.final_views == b.final_views
        assert a.final_my_load == b.final_my_load

    def test_silent_mechanism_stays_silent(self, tree):
        script, _ = record(tree, "oracle")
        out = create_backend("des").execute(script)
        assert sum(out.messages_by_type.values()) == 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            create_backend("mpi")
