"""Unit tests for the Simulator engine: clock, limits, deadlock detection."""

import pytest

from repro.simcore import (
    SimulationDeadlock,
    SimulationLimitExceeded,
    Simulator,
)


class TestScheduling:
    def test_clock_advances_monotonically(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, lambda: seen.append(sim.now))
        sim.schedule(1.0, lambda: seen.append(sim.now))
        reason = sim.run()
        assert reason == "drained"
        assert seen == [1.0, 2.0]
        assert sim.now == 2.0

    def test_schedule_from_within_event(self):
        sim = Simulator()
        seen = []

        def first():
            sim.schedule(0.5, lambda: seen.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [("second", 1.5)]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        hit = []
        ev = sim.schedule(1.0, lambda: hit.append(1))
        sim.cancel(ev)
        sim.run()
        assert hit == []

    def test_stop_halts_run(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: (seen.append(1), sim.stop("done"))[0])
        sim.schedule(2.0, lambda: seen.append(2))
        reason = sim.run()
        assert reason == "done"
        assert seen == [1]

    def test_run_until_horizon(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: seen.append(1))
        sim.schedule(10.0, lambda: seen.append(10))
        reason = sim.run(until=5.0)
        assert reason == "horizon"
        assert seen == [1]
        assert sim.now == 5.0
        # resuming picks up the remaining event
        sim.run()
        assert seen == [1, 10]

    def test_cancel_still_works_after_horizon_requeue(self):
        """Regression: the horizon pause used to re-push the event's *fields*
        as a brand-new Event, so a handle held by a caller no longer
        cancelled the re-queued copy."""
        sim = Simulator()
        hit = []
        ev = sim.schedule(10.0, lambda: hit.append(1))
        assert sim.run(until=5.0) == "horizon"
        sim.cancel(ev)  # must cancel the re-queued event, not a dead copy
        assert sim.run() == "drained"
        assert hit == []

    def test_horizon_requeue_preserves_event_order(self):
        """The re-inserted event keeps its original seq: a same-time event
        scheduled *after* the pause still runs after it."""
        sim = Simulator()
        seen = []
        sim.schedule(10.0, lambda: seen.append("early-handle"))
        sim.run(until=5.0)
        sim.schedule_at(10.0, lambda: seen.append("late-handle"))
        sim.run()
        assert seen == ["early-handle", "late-handle"]


class TestLimits:
    def test_event_limit(self):
        sim = Simulator(max_events=10)

        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(1.0, loop)
        with pytest.raises(SimulationLimitExceeded):
            sim.run()

    def test_time_limit(self):
        sim = Simulator(max_time=5.0)
        sim.schedule(10.0, lambda: None)
        with pytest.raises(SimulationLimitExceeded):
            sim.run()


class TestDeadlockDetection:
    def test_drain_with_failing_check_raises(self):
        sim = Simulator()
        sim.on_drain_check(lambda: False)
        sim.add_state_dumper(lambda: "proc P0 stuck")
        sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationDeadlock, match="proc P0 stuck"):
            sim.run()

    def test_drain_with_passing_check_is_normal(self):
        sim = Simulator()
        sim.on_drain_check(lambda: True)
        sim.schedule(1.0, lambda: None)
        assert sim.run() == "drained"


class TestDeterminism:
    def test_rng_streams_reproducible(self):
        a = Simulator(seed=42).rng.stream("x").random(5)
        b = Simulator(seed=42).rng.stream("x").random(5)
        assert (a == b).all()

    def test_rng_streams_independent_by_name(self):
        sim = Simulator(seed=42)
        a = sim.rng.stream("x").random(5)
        b = sim.rng.stream("y").random(5)
        assert not (a == b).all()
