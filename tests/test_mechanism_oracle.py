"""Tests for the oracle baseline mechanism (perfect zero-cost information)."""

import pytest

from repro import run_factorization
from repro.matrices import generators as gen
from repro.mechanisms import (
    Load,
    MechanismConfig,
    MechanismShared,
    OracleMechanism,
    create_mechanism,
)
from repro.symbolic import analyze_matrix

from helpers import make_world


def oracle_world(nprocs):
    shared = MechanismShared()
    factory = lambda: OracleMechanism(MechanismConfig())
    return (*make_world(nprocs, factory, shared=shared), shared)


class TestOracleSemantics:
    def test_registered(self):
        assert isinstance(create_mechanism("oracle"), OracleMechanism)

    def test_no_messages_ever(self):
        sim, net, procs, shared = oracle_world(4)
        procs[0].mechanism.on_local_change(Load(100.0, 10.0))
        procs[1].mechanism.record_decision({2: Load(50.0, 5.0)})
        procs[1].mechanism.decision_complete()
        procs[3].mechanism.declare_no_more_master()
        sim.run()
        assert net.stats.sent_total == 0

    def test_changes_visible_instantly_everywhere(self):
        sim, net, procs, shared = oracle_world(4)
        procs[0].mechanism.on_local_change(Load(100.0, 10.0))
        got = []
        procs[3].mechanism.request_view(got.append)
        assert got[0].get(0).workload == 100.0
        assert got[0].get(0).memory == 10.0

    def test_reservations_applied_globally(self):
        sim, net, procs, shared = oracle_world(4)
        procs[0].mechanism.record_decision({1: Load(50.0, 5.0)})
        got = []
        procs[2].mechanism.request_view(got.append)
        assert got[0].get(1).workload == 50.0

    def test_slave_arrival_not_double_counted(self):
        sim, net, procs, shared = oracle_world(3)
        procs[0].mechanism.record_decision({1: Load(50.0, 5.0)})
        procs[1].mechanism.on_local_change(Load(50.0, 5.0), slave_task=True)
        got = []
        procs[2].mechanism.request_view(got.append)
        assert got[0].get(1).workload == 50.0

    def test_never_blocks(self):
        sim, net, procs, shared = oracle_world(2)
        assert not procs[0].mechanism.blocks_tasks()

    def test_current_view_is_global(self):
        sim, net, procs, shared = oracle_world(3)
        procs[1].mechanism.on_local_change(Load(7.0, 3.0))
        assert procs[0].mechanism.current_view().get(1).workload == 7.0

    def test_initial_loads_seeded(self):
        sim, net, procs, shared = oracle_world(3)
        loads = [Load(1.0, 0.0), Load(2.0, 0.0), Load(3.0, 0.0)]
        for p in procs:
            p.mechanism.initialize_view(loads)
        got = []
        procs[0].mechanism.request_view(got.append)
        assert [got[0].get(r).workload for r in range(3)] == [1.0, 2.0, 3.0]


class TestOracleInSolver:
    @pytest.fixture(scope="class")
    def tree(self):
        return analyze_matrix(gen.grid_laplacian((12, 12, 4)), name="ogrid")

    def test_factorization_completes_with_zero_state_messages(self, tree):
        r = run_factorization(tree, 8, mechanism="oracle")
        assert r.factorization_time > 0
        assert r.state_messages == 0
        assert r.total_factor_entries == pytest.approx(tree.total_factor_entries)

    def test_oracle_not_slower_than_snapshot(self, tree):
        ora = run_factorization(tree, 8, mechanism="oracle", strategy="workload")
        snp = run_factorization(tree, 8, mechanism="snapshot", strategy="workload")
        assert ora.factorization_time <= snp.factorization_time

    def test_both_strategies_work(self, tree):
        for strategy in ("workload", "memory"):
            r = run_factorization(tree, 8, mechanism="oracle", strategy=strategy)
            assert r.factorization_time > 0
