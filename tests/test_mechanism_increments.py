"""Unit tests for the increments mechanism (Algorithm 3)."""

import pytest

from repro.mechanisms import IncrementsMechanism, Load, MechanismConfig

from helpers import make_world


def inc_world(nprocs, threshold=Load(10.0, 10.0), **kw):
    factory = lambda: IncrementsMechanism(MechanismConfig(threshold=threshold))
    return make_world(nprocs, factory, **kw)


class TestDeltaAccumulation:
    def test_small_deltas_accumulate_until_threshold(self):
        sim, net, procs = inc_world(2)
        m = procs[0].mechanism
        for _ in range(3):
            m.on_local_change(Load(4.0, 0.0))  # 4, 8, 12 -> fires at 12
        sim.run()
        assert net.stats.by_type["update"] == 1
        assert procs[1].mechanism.view.get(0).workload == 12.0

    def test_accumulator_resets_after_send(self):
        sim, net, procs = inc_world(2)
        m = procs[0].mechanism
        m.on_local_change(Load(12.0, 0.0))
        m.on_local_change(Load(5.0, 0.0))
        sim.run()
        assert net.stats.by_type["update"] == 1
        assert procs[1].mechanism.view.get(0).workload == 12.0
        assert m.my_load.workload == 17.0

    def test_negative_deltas_rebroadcast(self):
        """|∆load| comparison: decreases propagate too (see module docstring)."""
        sim, net, procs = inc_world(2)
        m = procs[0].mechanism
        m.on_local_change(Load(12.0, 0.0))
        m.on_local_change(Load(-15.0, 0.0))
        sim.run()
        assert net.stats.by_type["update"] == 2
        assert procs[1].mechanism.view.get(0).workload == pytest.approx(-3.0)

    def test_mixed_signs_cancel_without_message(self):
        sim, net, procs = inc_world(2)
        m = procs[0].mechanism
        m.on_local_change(Load(6.0, 0.0))
        m.on_local_change(Load(-6.0, 0.0))
        sim.run()
        assert net.stats.by_type.get("update", 0) == 0

    def test_remote_views_apply_deltas_cumulatively(self):
        sim, net, procs = inc_world(2)
        for p in procs:
            p.mechanism.initialize_view([Load(100.0, 0.0), Load(0.0, 0.0)])
        procs[0].mechanism.on_local_change(Load(20.0, 0.0))
        sim.run()
        procs[0].mechanism.on_local_change(Load(-15.0, 0.0))
        sim.run()
        assert procs[1].mechanism.view.get(0).workload == pytest.approx(105.0)


class TestSlaveTaskRule:
    def test_positive_slave_delta_skipped(self):
        """Algorithm 3 step (1): arrival of reserved work is not re-counted."""
        sim, net, procs = inc_world(2)
        m = procs[1].mechanism
        m.on_local_change(Load(100.0, 10.0), slave_task=True)
        sim.run()
        assert net.stats.sent_total == 0
        assert m.my_load.workload == 0.0  # counted at Master_To_All reception

    def test_negative_slave_delta_processed(self):
        sim, net, procs = inc_world(2)
        m = procs[1].mechanism
        m.on_local_change(Load(-50.0, -5.0), slave_task=True)
        sim.run()
        assert net.stats.by_type["update"] == 1
        assert m.my_load.workload == -50.0


class TestMasterToAll:
    def test_reservation_broadcast_updates_everyone(self):
        sim, net, procs = inc_world(4)
        shares = {1: Load(50.0, 5.0), 2: Load(30.0, 3.0)}
        procs[0].mechanism.record_decision(shares)
        sim.run()
        assert net.stats.by_type["master_to_all"] == 3
        # Third parties update their view of the slaves.
        assert procs[3].mechanism.view.get(1).workload == 50.0
        assert procs[3].mechanism.view.get(2).workload == 30.0
        # The master's own view too (local application).
        assert procs[0].mechanism.view.get(1).workload == 50.0

    def test_selected_slave_updates_its_own_load(self):
        """Algorithm 3 line 21: Pj == myself branch."""
        sim, net, procs = inc_world(3)
        procs[0].mechanism.record_decision({1: Load(50.0, 5.0)})
        sim.run()
        m1 = procs[1].mechanism
        assert m1.my_load.workload == 50.0
        assert m1.view.get(1).workload == 50.0
        # When the actual work arrives, the slave skips the positive delta:
        m1.on_local_change(Load(50.0, 5.0), slave_task=True)
        assert m1.my_load.workload == 50.0  # not double-counted

    def test_successive_decisions_are_visible(self):
        """The fix for Figure 1: a second master sees the first reservation."""
        sim, net, procs = inc_world(3)
        for p in procs:
            p.mechanism.initialize_view([Load.ZERO] * 3)
        procs[0].mechanism.record_decision({2: Load(500.0, 0.0)})
        sim.run()
        views = []
        procs[1].mechanism.request_view(views.append)
        assert views[0].get(2).workload == 500.0

    def test_decision_complete_is_noop(self):
        sim, net, procs = inc_world(2)
        procs[0].mechanism.record_decision({1: Load(1.0, 0.0)})
        procs[0].mechanism.decision_complete()
        sim.run()
        assert not procs[0].mechanism.blocks_tasks()


class TestNonBlocking:
    def test_never_blocks_tasks(self):
        sim, net, procs = inc_world(2)
        m = procs[0].mechanism
        assert not m.blocks_tasks()
        m.record_decision({1: Load(1.0, 0.0)})
        assert not m.blocks_tasks()


class TestNoMoreMasterInteraction:
    def test_updates_filtered_but_master_to_all_not(self):
        sim, net, procs = inc_world(3)
        procs[2].mechanism.declare_no_more_master()
        sim.run()
        procs[0].mechanism.on_local_change(Load(100.0, 0.0))
        procs[0].mechanism.record_decision({1: Load(5.0, 0.0)})
        sim.run()
        # Update went to P1 only; Master_To_All reached both (slaves must
        # learn their reservations even if they are never masters).
        assert net.stats.by_type["update"] == 1
        assert net.stats.by_type["master_to_all"] == 2
        assert procs[2].mechanism.view.get(1).workload == 5.0
