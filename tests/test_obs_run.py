"""End-to-end telemetry tests: metrics-on runs, reports, persistence.

The contract under test (docs/observability.md): metrics collection is
passive — a metrics-on run produces *identical* simulated results to a
metrics-off run — and the registry export agrees with the run's own
aggregate message statistics.
"""

import json

import pytest

from repro.matrices import generators as gen
from repro.obs import (
    MetricsRegistry,
    render_report,
    view_accuracy_samples,
)
from repro.obs.report import collect_metrics, load_metrics_doc, to_prometheus
from repro.solver.driver import SolverConfig, run_factorization
from repro.symbolic import analyze_matrix


@pytest.fixture(scope="module")
def tree():
    return analyze_matrix(gen.grid_laplacian((10, 10, 6)), name="obsgrid")


@pytest.fixture(scope="module")
def metrics_run(tree):
    return run_factorization(tree, 8, "increments", "workload",
                             SolverConfig(metrics=True))


def counter_values(metrics, family):
    """{labelset-tuple: value} of one counter family in an export."""
    fam = metrics["families"].get(family, {"series": []})
    return {
        tuple(sorted(s["labels"].items())): s["value"] for s in fam["series"]
    }


class TestMetricsOnRun:
    def test_export_present_and_well_formed(self, metrics_run):
        m = metrics_run.metrics
        assert m is not None and m["schema"] == 1
        assert MetricsRegistry.from_dict(m).to_dict() == m

    def test_results_identical_to_metrics_off(self, tree):
        on = run_factorization(tree, 8, "increments", "workload",
                               SolverConfig(metrics=True))
        off = run_factorization(tree, 8, "increments", "workload",
                                SolverConfig())
        assert on.factorization_time == off.factorization_time
        assert on.peak_active_memory == off.peak_active_memory
        assert on.decisions == off.decisions
        assert on.events_executed == off.events_executed
        assert on.messages_by_type == off.messages_by_type
        assert off.metrics is None
        assert "metrics" not in off.to_dict()

    def test_sent_counters_match_network_stats(self, metrics_run):
        sent = counter_values(metrics_run.metrics, "messages_sent_total")
        by_type = {}
        for labels, value in sent.items():
            t = dict(labels)["type"]
            by_type[t] = by_type.get(t, 0) + int(value)
        assert by_type == dict(metrics_run.messages_by_type)

    def test_treat_counters_do_not_exceed_sends(self, metrics_run):
        m = metrics_run.metrics
        sent = sum(counter_values(m, "messages_sent_total").values())
        treated = sum(counter_values(m, "messages_treated_total").values())
        assert 0 < treated <= sent

    def test_broadcast_causes_labeled(self, metrics_run):
        causes = {
            dict(ls)["cause"]
            for ls in counter_values(metrics_run.metrics,
                                     "state_broadcasts_total")
        }
        # increments: threshold broadcasts + per-decision reservations
        assert "reservation" in causes
        assert causes <= {"threshold", "reservation", "timer",
                          "no_more_master", "refresh", "snapshot_start",
                          "snapshot_end"}

    def test_solver_gauges(self, metrics_run):
        fams = metrics_run.metrics["families"]
        t = fams["factorization_seconds"]["series"][0]["value"]
        assert t == pytest.approx(metrics_run.factorization_time)
        d = fams["decisions_total"]["series"][0]["value"]
        assert d == metrics_run.decisions
        utils = fams["rank_utilization"]["series"]
        assert len(utils) == 8
        assert all(0.0 <= s["value"] <= 1.0 + 1e-9 for s in utils)

    def test_view_accuracy_sampled_at_every_decision(self, metrics_run):
        samples = view_accuracy_samples(metrics_run.metrics)
        assert len(samples) == metrics_run.decisions
        for rec in samples:
            assert {"time", "master", "signed_workload",
                    "abs_workload"} <= set(rec)

    def test_snapshot_run_records_round_latencies(self, tree):
        r = run_factorization(tree, 8, "snapshot", "workload",
                              SolverConfig(metrics=True))
        fams = r.metrics["families"]
        rounds = fams["snapshot_round_seconds"]["series"][0]
        gather = fams["snapshot_gather_seconds"]["series"][0]
        assert rounds["count"] == r.snapshot_count > 0
        assert gather["count"] > 0
        # the gather phase is part of the round, so it cannot take longer
        assert gather["max"] <= rounds["max"] + 1e-12


class TestDeterministicExport:
    def test_two_seeded_runs_export_byte_identical_json(self, tree):
        a = run_factorization(tree, 8, "increments", "workload",
                              SolverConfig(metrics=True))
        b = run_factorization(tree, 8, "increments", "workload",
                              SolverConfig(metrics=True))
        assert json.dumps(a.metrics, sort_keys=False) == \
            json.dumps(b.metrics, sort_keys=False)

    def test_golden_export(self):
        """Byte-exact export of a small seeded run, committed as a golden.

        Regenerate (after an *intentional* metrics change) with::

            PYTHONPATH=src python - <<'EOF'
            import json
            from repro.matrices import generators as gen
            from repro.solver.driver import SolverConfig, run_factorization
            from repro.symbolic import analyze_matrix
            tree = analyze_matrix(gen.grid_laplacian((6, 6, 3)),
                                  name="goldengrid")
            r = run_factorization(tree, 4, "increments", "workload",
                                  SolverConfig(metrics=True))
            open("tests/golden/metrics_export.json", "w").write(
                json.dumps(r.metrics, indent=1, sort_keys=False) + "\\n")
            EOF
        """
        from pathlib import Path

        from repro.matrices import generators as gen
        from repro.symbolic import analyze_matrix

        tree = analyze_matrix(gen.grid_laplacian((6, 6, 3)),
                              name="goldengrid")
        r = run_factorization(tree, 4, "increments", "workload",
                              SolverConfig(metrics=True))
        golden = Path(__file__).parent / "golden" / "metrics_export.json"
        expected = golden.read_text(encoding="utf-8")
        got = json.dumps(r.metrics, indent=1, sort_keys=False) + "\n"
        assert got == expected


class TestPrometheusConformance:
    """Exposition-format checks over *every* family a real run exports."""

    def _typed_families(self, text):
        """{metric-name: type} parsed from ``# TYPE`` lines."""
        out = {}
        for line in text.splitlines():
            if line.startswith("# TYPE "):
                _, _, name, ptype = line.split(" ")
                out[name] = ptype
        return out

    def test_every_family_has_a_type_line(self, metrics_run):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry.from_dict(metrics_run.metrics)
        text = reg.to_prometheus()
        typed = self._typed_families(text)
        for name, fam in metrics_run.metrics["families"].items():
            kind = fam["kind"]
            if kind in ("counter", "gauge", "histogram"):
                assert typed.get("repro_" + name) == kind, name
            elif kind == "timeseries":
                # summarized as two gauges (no native simulated-time type)
                assert typed.get(f"repro_{name}_last") == "gauge", name
                assert typed.get(f"repro_{name}_points") == "gauge", name
            else:  # samples are deliberately not exposable
                assert "repro_" + name not in typed, name

    def test_every_help_line_precedes_its_type_line(self, metrics_run):
        from repro.obs import MetricsRegistry

        lines = MetricsRegistry.from_dict(
            metrics_run.metrics).to_prometheus().splitlines()
        for i, line in enumerate(lines):
            if line.startswith("# HELP "):
                helped = line.split(" ")[2]
                assert lines[i + 1] == \
                    f"# TYPE {helped} " + lines[i + 1].split(" ")[-1]

    def test_histogram_buckets_cumulative_closed_by_inf(self, metrics_run):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry.from_dict(metrics_run.metrics)
        text = reg.to_prometheus()
        # group bucket lines per (family, non-le labelset)
        import re

        buckets = {}
        for m in re.finditer(
                r'^(\w+)_bucket\{(.*)le="([^"]+)"\} (\d+)$', text,
                re.MULTILINE):
            name, rest, le, val = m.groups()
            buckets.setdefault((name, rest), []).append((le, int(val)))
        assert buckets  # the run exports at least one histogram
        for (name, rest), series in buckets.items():
            les = [le for le, _ in series]
            vals = [v for _, v in series]
            assert les[-1] == "+Inf", (name, rest)
            assert vals == sorted(vals), (name, rest)  # cumulative
            count_line = f"{name}_count{{{rest.rstrip(',')}}} {vals[-1]}"
            assert count_line in text or \
                f"{name}_count {vals[-1]}" in text, (name, rest)

    def test_merged_sweep_export_injects_run_label_everywhere(
            self, metrics_run):
        text = to_prometheus([("sweep one", metrics_run.metrics)])
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            assert 'run="sweep one"' in line, line


class TestReporting:
    def test_render_report(self, metrics_run):
        text = render_report("obsgrid P=8", metrics_run.metrics)
        assert "obsgrid P=8" in text
        assert "messages_sent_total" in text
        assert "view accuracy" in text

    def test_prometheus_merge_injects_run_label(self, metrics_run):
        text = to_prometheus([("r1", metrics_run.metrics)])
        assert 'run="r1"' in text
        assert "repro_messages_sent_total" in text

    def test_load_metrics_doc_all_three_formats(self, metrics_run):
        bare = metrics_run.metrics
        assert load_metrics_doc(bare) == [("run", dict(bare))]
        wrapped = {"run": {"problem": "X", "nprocs": 8,
                           "mechanism": "increments", "strategy": "workload"},
                   "metrics": bare}
        ((label, m),) = load_metrics_doc(wrapped)
        assert label == "X P=8 increments/workload"
        dump = {"runs": [{"metrics": bare}, {"no_metrics": True}]}
        assert len(load_metrics_doc(dump)) == 1
        with pytest.raises(ValueError):
            load_metrics_doc({"something": "else"})


class TestRunnerPersistence:
    def test_metrics_dir_files_and_cli_report(self, tmp_path, capsys):
        from repro.experiments.runner import ExperimentRunner, ExperimentScale

        mdir = tmp_path / "run-metrics"
        runner = ExperimentRunner(scale=ExperimentScale(fast=True),
                                  metrics_dir=str(mdir))
        runner.run("GUPTA3", 8, "increments", "workload")
        files = sorted(mdir.glob("*.json"))
        assert len(files) == 1
        doc = json.loads(files[0].read_text())
        assert doc["run"]["problem"] == "GUPTA3"
        assert doc["metrics"]["schema"] == 1
        # a second identical run is a cache hit and writes nothing new
        runner.run("GUPTA3", 8, "increments", "workload")
        assert sorted(mdir.glob("*.json")) == files

        entries = collect_metrics([mdir])
        assert [label for label, _ in entries] == \
            ["GUPTA3 P=8 increments/workload"]

        from repro.obs.__main__ import main
        assert main(["report", str(mdir)]) == 0
        assert "GUPTA3" in capsys.readouterr().out
        assert main(["prom", str(mdir)]) == 0
        assert 'run="GUPTA3' in capsys.readouterr().out

    def test_report_cli_empty_dir_exits_two(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        empty = tmp_path / "nothing"
        empty.mkdir()
        assert main(["report", str(empty)]) == 2
        assert "no metrics" in capsys.readouterr().err

    def test_report_cli_missing_path_exits_two(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        missing = tmp_path / "nope.json"
        assert main(["report", str(missing)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "nope.json" in err

    def test_prom_cli_invalid_json_exits_two(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["prom", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "bad.json" in err

    def test_report_cli_unrecognized_doc_exits_two(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        foreign = tmp_path / "foreign.json"
        foreign.write_text('{"something": "else"}', encoding="utf-8")
        assert main(["report", str(foreign)]) == 2
        assert "foreign.json" in capsys.readouterr().err
