"""Tests for the fill-reducing orderings."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.matrices import generators as gen
from repro.symbolic.etree import column_counts, elimination_tree, factor_nnz
from repro.symbolic.graph import permute_symmetric, symmetrize_pattern
from repro.symbolic.ordering import (
    compute_ordering,
    minimum_degree,
    natural,
    nested_dissection,
    reverse_cuthill_mckee,
)


def fill_of(B, perm):
    Bp = permute_symmetric(B, perm)
    parent = elimination_tree(Bp)
    return factor_nnz(column_counts(Bp, parent))


class TestPermutationValidity:
    @pytest.mark.parametrize("method", ["nd", "rcm", "natural"])
    def test_is_permutation(self, method):
        A = gen.grid_laplacian((9, 9))
        perm = compute_ordering(A, method)
        assert sorted(perm) == list(range(81))

    def test_nd_on_disconnected_graph(self):
        A = sp.block_diag(
            [gen.grid_laplacian((7, 7)), gen.grid_laplacian((6, 8))]
        ).tocsr()
        perm = nested_dissection(A, leaf_size=8)
        assert sorted(perm) == list(range(49 + 48))

    def test_nd_on_tiny_graph(self):
        A = gen.grid_laplacian((3,))
        perm = nested_dissection(A, leaf_size=8)
        assert sorted(perm) == [0, 1, 2]

    def test_nd_on_dense_graph(self):
        A = sp.csr_matrix(np.ones((30, 30)))
        perm = nested_dissection(A, leaf_size=4)
        assert sorted(perm) == list(range(30))

    @given(st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_nd_always_a_permutation_on_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(10, 120))
        m = int(rng.integers(n, 4 * n))
        r = rng.integers(0, n, size=m)
        c = rng.integers(0, n, size=m)
        A = sp.coo_matrix((np.ones(m), (r, c)), shape=(n, n)) + sp.eye(n)
        perm = nested_dissection(A.tocsr(), leaf_size=8)
        assert sorted(perm) == list(range(n))


class TestOrderingQuality:
    def test_nd_beats_natural_on_3d_grid(self):
        A = gen.grid_laplacian((9, 9, 9))
        B = symmetrize_pattern(A)
        assert fill_of(B, nested_dissection(B)) < fill_of(B, natural(B))

    def test_nd_beats_natural_on_2d_grid(self):
        A = gen.grid_laplacian((24, 24))
        B = symmetrize_pattern(A)
        assert fill_of(B, nested_dissection(B, leaf_size=16)) < fill_of(B, natural(B))

    def test_rcm_reduces_bandwidth(self):
        A = gen.grid_laplacian((15, 15))
        B = symmetrize_pattern(A)
        perm = reverse_cuthill_mckee(B)
        Bp = permute_symmetric(B, perm).tocoo()
        bw = int(np.abs(Bp.row - Bp.col).max())
        # RCM bandwidth of a 15x15 5-point grid is ~grid side
        assert bw <= 2 * 15

    def test_nd_deterministic(self):
        A = gen.grid_laplacian((10, 10, 5))
        p1 = nested_dissection(A)
        p2 = nested_dissection(A)
        assert (p1 == p2).all()

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            compute_ordering(gen.grid_laplacian((4, 4)), "metis")


class TestMinimumDegree:
    @pytest.mark.parametrize("shape", [(8, 8), (5, 5, 5)])
    def test_is_permutation(self, shape):
        A = gen.grid_laplacian(shape)
        perm = minimum_degree(A)
        assert sorted(perm) == list(range(A.shape[0]))

    def test_beats_natural_on_grids(self):
        A = gen.grid_laplacian((16, 16))
        B = symmetrize_pattern(A)
        assert fill_of(B, minimum_degree(B)) < fill_of(B, natural(B))

    def test_eliminates_low_degree_first(self):
        # On a star graph, MD must eliminate all the leaves before the hub.
        import scipy.sparse as sp

        n = 10
        rows = [0] * (n - 1) + list(range(1, n))
        cols = list(range(1, n)) + [0] * (n - 1)
        A = sp.coo_matrix(([1.0] * len(rows), (rows, cols)), shape=(n, n))
        A = (A + sp.eye(n)).tocsr()
        perm = minimum_degree(A)
        # The hub's degree only becomes minimal once the leaves are gone:
        # it cannot be eliminated before the second-to-last position.
        assert list(perm).index(0) >= n - 2

    def test_dense_matrix_handled_by_tail(self):
        import numpy as np
        import scipy.sparse as sp

        A = sp.csr_matrix(np.ones((20, 20)))
        perm = minimum_degree(A)
        assert sorted(perm) == list(range(20))

    def test_dispatchable_by_name(self):
        A = gen.grid_laplacian((6, 6))
        perm = compute_ordering(A, "md")
        assert sorted(perm) == list(range(36))

    @given(st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_property_always_permutation(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 60))
        m = int(rng.integers(n, 3 * n))
        r = rng.integers(0, n, size=m)
        c = rng.integers(0, n, size=m)
        A = sp.coo_matrix((np.ones(m), (r, c)), shape=(n, n)) + sp.eye(n)
        perm = minimum_degree(A.tocsr())
        assert sorted(perm) == list(range(n))
