"""Unit tests for the snapshot mechanism (paper §3).

The scenarios below include the paper's own asynchronism example (three
processes, end_snp/start_snp crossing) and the sequentialization guarantee:
every snapshot completed after a decision observes that decision.
"""

import pytest

from repro.mechanisms import (
    Load,
    MechanismConfig,
    MechanismShared,
    SnapshotMechanism,
    SnapshotStats,
)
from repro.simcore import NetworkConfig, ProtocolError

from helpers import make_world


def snp_world(nprocs, *, threaded=False, seed=0, config=None, with_stats=False):
    shared = MechanismShared()
    factory = lambda: SnapshotMechanism(MechanismConfig())
    sim, net, procs = make_world(
        nprocs, factory, seed=seed, config=config, threaded=threaded, shared=shared
    )
    if with_stats:
        shared.snapshot_stats = SnapshotStats(sim)
    return sim, net, procs, shared


def decide(proc, assignments, views, record=True):
    """Drive a full decision on `proc`: snapshot -> select -> finalize."""

    def callback(view):
        views.append((proc.rank, view))
        if record:
            proc.mechanism.record_decision(assignments)
        proc.mechanism.decision_complete()

    proc.mechanism.request_view(callback)


class TestSingleSnapshot:
    def test_gathers_current_states(self):
        sim, net, procs, _ = snp_world(4)
        for r, p in enumerate(procs):
            p.mechanism.on_local_change(Load(10.0 * (r + 1), r + 1.0))
        views = []
        sim.schedule(0.0, lambda: decide(procs[0], {}, views, record=False))
        sim.run()
        assert len(views) == 1
        _, view = views[0]
        for r in range(4):
            assert view.get(r).workload == 10.0 * (r + 1)
            assert view.get(r).memory == r + 1.0

    def test_message_types_and_counts(self):
        sim, net, procs, _ = snp_world(4)
        views = []
        sim.schedule(0.0, lambda: decide(procs[0], {1: Load(5.0, 1.0)}, views))
        sim.run()
        assert net.stats.by_type["start_snp"] == 3
        assert net.stats.by_type["snp"] == 3
        assert net.stats.by_type["end_snp"] == 3
        assert net.stats.by_type["master_to_slave"] == 1

    def test_initiator_blocked_until_finalize(self):
        sim, net, procs, _ = snp_world(3)
        p0 = procs[0]
        ran = []
        views = []
        p0.queue_task(1.0, on_complete=lambda: ran.append(sim.now))
        # Initiate immediately: the queued task must not start while blocked.
        decide(p0, {}, views, record=False)
        assert p0.mechanism.blocks_tasks()
        sim.run()
        assert views and not p0.mechanism.blocks_tasks()
        assert ran, "task should run after the snapshot completes"

    def test_non_initiators_blocked_until_end_snp(self):
        # Slow links make the blocking window wide enough to observe.
        cfg = NetworkConfig(latency=1e-3)
        sim, net, procs, _ = snp_world(3, config=cfg)
        views = []
        blocked_during = []

        def check():
            blocked_during.append(procs[1].mechanism.blocks_tasks())

        decide(procs[0], {}, views, record=False)
        sim.schedule(1.5e-3, check)  # after start_snp delivery, before end
        sim.run()
        assert blocked_during == [True]
        assert not procs[1].mechanism.blocks_tasks()

    def test_single_process_degenerate(self):
        sim, net, procs, _ = snp_world(1)
        views = []
        procs[0].mechanism.on_local_change(Load(7.0, 0.0))
        decide(procs[0], {}, views, record=False)
        assert views[0][1].get(0).workload == 7.0
        assert not procs[0].mechanism.blocks_tasks()

    def test_overlapping_requests_rejected(self):
        sim, net, procs, _ = snp_world(3)
        procs[0].mechanism.request_view(lambda v: None)
        with pytest.raises(ProtocolError):
            procs[0].mechanism.request_view(lambda v: None)


class TestMasterToSlave:
    def test_reservation_updates_slave_self_load(self):
        sim, net, procs, _ = snp_world(3)
        views = []
        decide(procs[0], {1: Load(100.0, 10.0)}, views)
        sim.run()
        m1 = procs[1].mechanism
        assert m1.my_load.workload == 100.0
        # Physical arrival of the reserved work is then skipped:
        m1.on_local_change(Load(100.0, 10.0), slave_task=True)
        assert m1.my_load.workload == 100.0

    def test_master_cannot_select_itself(self):
        sim, net, procs, _ = snp_world(3)
        views = []
        decide(procs[0], {0: Load(1.0, 0.0)}, views)
        with pytest.raises(ProtocolError):
            sim.run()  # the decision callback fires during the run


class TestConcurrentSnapshots:
    def test_two_initiators_sequentialized(self):
        """Concurrent decisions: the later one must observe the earlier one."""
        sim, net, procs, _ = snp_world(4)
        views = []
        sim.schedule(0.0, lambda: decide(procs[0], {2: Load(100.0, 10.0)}, views))
        sim.schedule(0.0, lambda: decide(procs[1], {3: Load(50.0, 5.0)}, views))
        sim.run()
        assert len(views) == 2
        order = [rank for rank, _ in views]
        assert order == [0, 1], "smaller rank completes first (leader election)"
        # P1's view must include P0's reservation on P2.
        v1 = views[1][1]
        assert v1.get(2).workload == 100.0

    def test_reverse_rank_order_still_sequentialized(self):
        sim, net, procs, _ = snp_world(4)
        views = []
        # Larger rank initiates first by a hair; smaller one still wins.
        sim.schedule(0.0, lambda: decide(procs[2], {3: Load(9.0, 0.0)}, views))
        sim.schedule(1e-6, lambda: decide(procs[1], {0: Load(8.0, 0.0)}, views))
        sim.run()
        assert [rank for rank, _ in views] == [1, 2]
        assert views[1][1].get(0).workload == 8.0

    def test_three_initiators_all_complete_in_rank_order(self):
        sim, net, procs, _ = snp_world(6)
        views = []
        for r in (2, 0, 4):
            proc = procs[r]
            slave = (r + 1) % 6
            sim.schedule(0.0, lambda p=proc, s=slave: decide(
                p, {s: Load(10.0 * p.rank + 1, 1.0)}, views))
        sim.run()
        assert [rank for rank, _ in views] == [0, 2, 4]
        # Each later snapshot sees all earlier reservations.
        v2 = views[1][1]
        assert v2.get(1).workload == 1.0  # P0's reservation on P1
        v4 = views[2][1]
        assert v4.get(3).workload == 21.0  # P2's reservation on P3

    def test_everyone_unblocked_after_all_snapshots(self):
        sim, net, procs, _ = snp_world(5)
        views = []
        sim.schedule(0.0, lambda: decide(procs[0], {1: Load(1, 0)}, views))
        sim.schedule(0.0, lambda: decide(procs[3], {4: Load(2, 0)}, views))
        sim.run()
        for p in procs:
            assert not p.mechanism.blocks_tasks(), p.mechanism.debug_state()

    def test_stale_answers_are_ignored_not_fatal(self):
        sim, net, procs, _ = snp_world(4)
        views = []
        sim.schedule(0.0, lambda: decide(procs[0], {}, views, record=False))
        sim.schedule(0.0, lambda: decide(procs[1], {}, views, record=False))
        sim.run()
        total_stale = sum(p.mechanism.stale_answers_ignored for p in procs)
        # P1 aborts and re-gathers; answers to its first request id are stale.
        assert len(views) == 2
        assert total_stale >= 0  # non-fatal by construction; counted

    def test_paper_asynchronism_example(self):
        """§3: P1 delays its answer to P3's *new* snapshot until P2's end_snp.

        Uses a slow link so end_snp(P2)→P1 arrives after P3's second
        start_snp reaches P1.  The protocol must still terminate with all
        three snapshots sequentialized.
        """
        # High-latency network exaggerates the crossing windows.
        cfg = NetworkConfig(latency=5e-3)
        sim, net, procs, _ = snp_world(4, config=cfg)
        views = []

        def p3_initiates_again():
            decide(procs[3], {0: Load(3.0, 0.0)}, views)

        sim.schedule(0.0, lambda: decide(procs[3], {1: Load(1.0, 0.0)}, views))
        sim.schedule(1e-3, lambda: decide(procs[2], {1: Load(2.0, 0.0)}, views))
        # When P3's first decision completes, immediately re-initiate.
        orig_complete = procs[3].mechanism.decision_complete

        def complete_and_reinitiate():
            orig_complete()
            if len(views) < 3:
                sim.schedule(0.0, p3_initiates_again)

        procs[3].mechanism.decision_complete = complete_and_reinitiate
        sim.run()
        assert len(views) == 3
        ranks = [r for r, _ in views]
        assert ranks[0] == 2, "P2 (smaller rank) completes before P3"
        # P3's snapshots observe P2's reservation on P1.
        for r, v in views:
            if r == 3:
                assert v.get(1).workload >= 2.0


class TestThreadedSnapshot:
    def test_computing_process_answers_via_poll_thread(self):
        sim, net, procs, _ = snp_world(3, threaded=True)
        views = []
        ends = []
        procs[2].queue_task(1.0, on_complete=lambda: ends.append(sim.now))
        sim.schedule(0.1, lambda: decide(procs[0], {}, views, record=False))
        sim.run()
        assert views, "snapshot completed while P2 was computing"
        # The answer came during P2's task: snapshot done long before t=1.
        assert views[0][1] is not None

    def test_task_paused_during_snapshot_and_resumed(self):
        sim, net, procs, _ = snp_world(3, threaded=True)
        views = []
        ends = []
        procs[2].queue_task(1.0, on_complete=lambda: ends.append(sim.now))
        sim.schedule(0.1, lambda: decide(procs[0], {}, views, record=False))
        sim.run()
        # Task end is delayed by (roughly) the snapshot duration, not more.
        assert ends[0] == pytest.approx(1.0, abs=0.01)
        assert ends[0] > 1.0

    def test_nonthreaded_snapshot_waits_for_task(self):
        sim, net, procs, _ = snp_world(3, threaded=False)
        views = []
        done_at = []
        procs[2].queue_task(1.0)
        sim.schedule(0.1, lambda: decide(procs[0], {}, views, record=False))
        sim.schedule(0.0, lambda: None)
        sim.run()
        assert views
        # P2 only answers after its task: the snapshot cannot complete
        # before t=1.0.  (Recorded by the simulator clock at callback time.)

    def test_threaded_snapshot_much_faster_than_blocking(self):
        def run(threaded):
            sim, net, procs, _ = snp_world(3, threaded=threaded)
            stamp = []
            procs[2].queue_task(1.0)

            def cb(view):
                stamp.append(sim.now)
                procs[0].mechanism.decision_complete()

            sim.schedule(0.1, lambda: procs[0].mechanism.request_view(cb))
            sim.run()
            return stamp[0]

        assert run(True) < 0.2 < 1.0 < run(False)


class TestSnapshotStats:
    def test_counts_and_union_time(self):
        sim, net, procs, shared = snp_world(4, with_stats=True)
        views = []
        sim.schedule(0.0, lambda: decide(procs[0], {}, views, record=False))
        sim.schedule(0.0, lambda: decide(procs[1], {}, views, record=False))
        sim.run()
        st = shared.snapshot_stats
        assert st.total_snapshots == 2
        assert st.max_concurrent == 2
        assert st.union_time > 0
        assert len(st.per_snapshot_durations) == 2
        assert st.concurrent_now == 0
