"""Tests for the remaining simcore pieces: trace, rng, Load/LoadView."""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mechanisms.view import Load, LoadView
from repro.simcore.rng import RngHub
from repro.simcore.trace import TraceRecorder


class TestTraceRecorder:
    def test_records_and_filters(self):
        t = TraceRecorder()
        t.record(1.0, "send", "a", who=0)
        t.record(2.0, "recv", "b", who=1)
        t.record(3.0, "send", "c", who=0)
        assert len(t) == 3
        assert [e.detail for e in t.filter(kind="send")] == ["a", "c"]
        assert [e.detail for e in t.filter(who=1)] == ["b"]
        assert [e.detail for e in t.filter(predicate=lambda e: e.time > 1.5)] == ["b", "c"]

    def test_keep_kinds_filter_on_record(self):
        t = TraceRecorder(keep_kinds={"send"})
        t.record(1.0, "send", "a")
        t.record(1.0, "recv", "b")
        assert len(t) == 1

    def test_timeline_marks_acting_process(self):
        t = TraceRecorder()
        t.record(1.0, "task", "start", who=1)
        text = t.render_timeline([0, 1, 2])
        line = [l for l in text.splitlines() if "start" in l][0]
        assert "*" in line

    def test_timeline_engine_entries_span(self):
        t = TraceRecorder()
        t.record(0.0, "mark", "global event")
        text = t.render_timeline([0, 1])
        assert "global event" in text

    def test_timeline_kind_filter(self):
        t = TraceRecorder()
        t.record(1.0, "a", "x", who=0)
        t.record(2.0, "b", "y", who=0)
        text = t.render_timeline([0], kinds=["a"])
        assert "x" in text and "y" not in text


class TestRngHub:
    def test_named_streams_stable_across_hubs(self):
        a = RngHub(7).stream("jitter").random(4)
        b = RngHub(7).stream("jitter").random(4)
        assert (a == b).all()

    def test_stream_cached(self):
        hub = RngHub(1)
        assert hub.stream("x") is hub.stream("x")

    def test_fork_independent(self):
        hub = RngHub(1)
        a = hub.fork("child").stream("x").random(4)
        b = hub.stream("x").random(4)
        assert not (a == b).all()

    def test_reset_restarts_streams(self):
        hub = RngHub(3)
        a = hub.stream("s").random(3)
        hub.reset()
        b = hub.stream("s").random(3)
        assert (a == b).all()


class TestLoad:
    def test_arithmetic(self):
        a = Load(3.0, 1.0)
        b = Load(1.0, 2.0)
        assert a + b == Load(4.0, 3.0)
        assert a - b == Load(2.0, -1.0)
        assert -a == Load(-3.0, -1.0)
        assert 2 * a == Load(6.0, 2.0)

    def test_abs_exceeds_either_metric(self):
        thr = Load(10.0, 5.0)
        assert not Load(9.0, 4.0).abs_exceeds(thr)
        assert Load(11.0, 0.0).abs_exceeds(thr)
        assert Load(0.0, -6.0).abs_exceeds(thr)

    def test_is_zero(self):
        assert Load.ZERO.is_zero()
        assert Load(1e-12, 0).is_zero(tol=1e-9)
        assert not Load(1.0, 0.0).is_zero()

    def test_sum(self):
        assert Load.sum([Load(1, 2), Load(3, 4)]) == Load(4, 6)
        assert Load.sum([]) == Load.ZERO

    @given(st.floats(-1e9, 1e9), st.floats(-1e9, 1e9),
           st.floats(-1e9, 1e9), st.floats(-1e9, 1e9))
    @settings(max_examples=50, deadline=None)
    def test_add_sub_roundtrip(self, w1, m1, w2, m2):
        a, b = Load(w1, m1), Load(w2, m2)
        c = (a + b) - b
        assert c.workload == pytest.approx(a.workload, abs=1e-3)
        assert c.memory == pytest.approx(a.memory, abs=1e-3)


class TestLoadView:
    def test_set_get_add(self):
        v = LoadView(3)
        v.set(1, Load(5.0, 2.0))
        v.add(1, Load(1.0, 1.0))
        assert v.get(1) == Load(6.0, 3.0)

    def test_copy_is_independent(self):
        v = LoadView(2)
        c = v.copy()
        c.set(0, Load(9.0, 9.0))
        assert v.get(0) == Load.ZERO

    def test_equality_and_allclose(self):
        a, b = LoadView(2), LoadView(2)
        assert a == b
        b.add(0, Load(1e-9, 0))
        assert a != b
        assert a.allclose(b)

    def test_iter(self):
        v = LoadView(2)
        v.set(1, Load(1.0, 2.0))
        assert list(v) == [Load.ZERO, Load(1.0, 2.0)]


class TestResultExport:
    def test_to_dict_json_serializable(self):
        from repro.matrices import generators as gen
        from repro.solver import run_factorization
        from repro.symbolic import analyze_matrix

        tree = analyze_matrix(gen.grid_laplacian((10, 10, 3)), name="jgrid")
        r = run_factorization(tree, 4, mechanism="increments")
        d = r.to_dict()
        text = json.dumps(d)
        back = json.loads(text)
        assert back["nprocs"] == 4
        assert back["peak_active_memory"] == r.peak_active_memory
        assert len(back["peak_active"]) == 4
