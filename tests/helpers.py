"""Shared test fixtures: a minimal host process driving a mechanism.

The real host is :class:`repro.solver.process.SolverProcess`; this stub
implements just enough of the Algorithm-1 contract (route STATE messages to
the mechanism, honour ``blocks_tasks``, run queued tasks) to unit-test the
mechanisms and the process model in isolation.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.mechanisms.base import Mechanism, MechanismShared
from repro.simcore import Network, NetworkConfig, SimProcess, Simulator, Work
from repro.simcore.network import Envelope


class HostProcess(SimProcess):
    """Test host: queued tasks + mechanism-driven state handling."""

    def __init__(self, sim, network, rank, mechanism: Optional[Mechanism] = None,
                 shared: Optional[MechanismShared] = None, **kw):
        super().__init__(sim, network, rank, **kw)
        self.mechanism = mechanism
        if mechanism is not None:
            mechanism.bind(self, shared)
        self.task_queue: Deque[Work] = deque()
        self.data_received: List[Envelope] = []
        self.idle_count = 0

    def queue_task(self, duration: float, label: str = "t",
                   on_start: Optional[Callable[[], None]] = None,
                   on_complete: Optional[Callable[[], None]] = None) -> None:
        self.task_queue.append(Work(duration, label, on_start, on_complete))
        self.notify_work()

    # --- SimProcess overrides ------------------------------------------

    def handle_state(self, env: Envelope) -> None:
        if self.mechanism is None or not self.mechanism.handle_message(env):
            raise AssertionError(f"unhandled state message {env.payload!r}")

    def handle_data(self, env: Envelope) -> None:
        self.data_received.append(env)

    def next_task(self) -> Optional[Work]:
        if self.task_queue:
            return self.task_queue.popleft()
        return None

    def can_start_task(self) -> bool:
        if self.mechanism is not None and self.mechanism.blocks_tasks():
            return False
        return True

    def can_receive_data(self) -> bool:
        if self.mechanism is not None and self.mechanism.blocks_tasks():
            return False
        return True

    def on_idle(self) -> None:
        self.idle_count += 1


def make_world(nprocs: int, mech_factory=None, *, seed: int = 0,
               config: Optional[NetworkConfig] = None, threaded: bool = False,
               shared: Optional[MechanismShared] = None):
    """Build (sim, network, [procs]) with optional per-proc mechanisms."""
    sim = Simulator(seed=seed)
    net = Network(sim, nprocs, config or NetworkConfig())
    procs = []
    for r in range(nprocs):
        mech = mech_factory() if mech_factory is not None else None
        procs.append(
            HostProcess(sim, net, r, mechanism=mech, shared=shared, threaded=threaded)
        )
    return sim, net, procs
