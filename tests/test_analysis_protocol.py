"""Protocol exhaustiveness: the repo's protocols are closed; broken ones fail."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis.protocol import (
    check_protocol,
    scan_catalogue,
    scan_wire_codecs,
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


class TestRepositoryProtocols:
    def test_repository_is_closed(self):
        """Every emittable type has a handler everywhere; no dead types."""
        assert check_protocol(SRC_ROOT) == []

    def test_catalogues_are_seen(self):
        mech = scan_catalogue(SRC_ROOT / "mechanisms" / "messages.py")
        solver = scan_catalogue(SRC_ROOT / "solver" / "messages.py")
        # Guards against the checker passing vacuously on an empty scan.
        assert {"UpdateAbsolute", "Snp", "Sequenced", "MasterToSlave"} <= mech
        assert {"SlaveTaskMsg", "CBBlockMsg", "ReleaseCBMsg"} <= solver

    def test_recovery_messages_are_in_the_checked_catalogue(self):
        """The PR 7 task-recovery triple is under the totality check."""
        solver = scan_catalogue(SRC_ROOT / "solver" / "messages.py")
        assert {"SlaveDoneMsg", "RevokeTaskMsg", "RevokeAckMsg"} <= solver

    def test_mechanism_catalogue_is_wire_encodable(self):
        """Every STATE-channel type survives the socket backend's codec."""
        mech = scan_catalogue(SRC_ROOT / "mechanisms" / "messages.py")
        coded = scan_wire_codecs(SRC_ROOT / "backends" / "wire.py")
        assert mech - coded == {"Sequenced"}  # wrapper: encoded structurally


def _fixture(tmp_path: Path, body: str) -> Path:
    f = tmp_path / "broken_mechanism.py"
    f.write_text(textwrap.dedent(body))
    return f


class TestBrokenMechanisms:
    def test_emitted_but_unhandled_is_caught(self, tmp_path):
        """A mechanism emitting a type it cannot treat is a finding."""
        fixture = _fixture(
            tmp_path,
            """
            class BrokenGossipMechanism(Mechanism):
                HANDLERS = {UpdateAbsolute: "_on_update_absolute"}

                def push(self):
                    # Emits StartSnp but registers no handler for it.
                    self._broadcast_state(StartSnp(req=1))
                    self._broadcast_state(UpdateAbsolute(load=self._my_load))

                def _on_update_absolute(self, env):
                    pass
            """,
        )
        findings = check_protocol(SRC_ROOT, extra_mechanism_files=[fixture])
        bad = [f for f in findings if f.subject == "BrokenGossipMechanism"]
        assert [f.kind for f in bad] == ["unhandled"]
        assert "StartSnp" in bad[0].message
        # The fixture must not contaminate the verdict on the real classes.
        assert all(f.subject == "BrokenGossipMechanism" for f in findings)

    def test_missing_handler_method_is_caught(self, tmp_path):
        fixture = _fixture(
            tmp_path,
            """
            class TypoMechanism(Mechanism):
                HANDLERS = {UpdateAbsolute: "_on_update_absoulte"}  # typo
            """,
        )
        findings = check_protocol(SRC_ROOT, extra_mechanism_files=[fixture])
        bad = [f for f in findings if f.subject == "TypoMechanism"]
        assert [f.kind for f in bad] == ["missing-method"]
        assert "_on_update_absoulte" in bad[0].message

    def test_unknown_message_type_is_caught(self, tmp_path):
        fixture = _fixture(
            tmp_path,
            """
            class PhantomMechanism(Mechanism):
                HANDLERS = {PhantomMsg: "_on_phantom"}

                def _on_phantom(self, env):
                    pass
            """,
        )
        findings = check_protocol(SRC_ROOT, extra_mechanism_files=[fixture])
        bad = [f for f in findings if f.subject == "PhantomMsg"]
        assert [f.kind for f in bad] == ["unknown-type"]

    def test_inherited_handlers_count(self, tmp_path):
        """Handlers merge along bases exactly like __init_subclass__ does."""
        fixture = _fixture(
            tmp_path,
            """
            class DerivedSnapshotMechanism(SnapshotMechanism):
                def extra(self):
                    self._send_state(0, Snp(req=1, load=self._my_load))
            """,
        )
        # Snp is handled by the inherited SnapshotMechanism table: clean.
        findings = check_protocol(SRC_ROOT, extra_mechanism_files=[fixture])
        assert findings == []


class TestBrokenSolver:
    def test_recovery_messages_cannot_bypass_the_totality_check(self, tmp_path):
        """A SolverProcess without recovery dispatch entries is a finding.

        The fixture shadows the real ``SolverProcess`` (extra files are
        scanned last; last definition of a name wins) with a handler table
        that predates PR 7's task recovery — the checker must flag every
        missing catalogue type, recovery triple included.
        """
        fixture = tmp_path / "broken_process.py"
        fixture.write_text(
            textwrap.dedent(
                """
                class SolverProcess:
                    DATA_HANDLERS = {SlaveTaskMsg: "_on_slave_task"}

                    def _on_slave_task(self, env):
                        pass
                """
            )
        )
        findings = check_protocol(SRC_ROOT, extra_solver_files=[fixture])
        unhandled = {
            f.message
            for f in findings
            if f.kind == "unhandled" and f.subject == "SolverProcess"
        }
        for name in ("SlaveDoneMsg", "RevokeTaskMsg", "RevokeAckMsg"):
            assert any(name in msg for msg in unhandled), name


class TestWireCodecCoverage:
    """Hermetic fake src-root: the `unencodable` cross-check end to end."""

    @staticmethod
    def _fake_root(tmp_path: Path, *, with_codec: bool) -> Path:
        root = tmp_path / "repro"
        (root / "mechanisms").mkdir(parents=True)
        (root / "solver").mkdir()
        (root / "backends").mkdir()
        (root / "mechanisms" / "messages.py").write_text(
            'class PingMsg:\n    TYPE = "ping"\n'
        )
        (root / "mechanisms" / "impl.py").write_text(
            textwrap.dedent(
                """
                class PingMechanism:
                    HANDLERS = {PingMsg: "_on_ping"}

                    def push(self):
                        self._broadcast_state(PingMsg())

                    def _on_ping(self, env):
                        pass
                """
            )
        )
        (root / "solver" / "messages.py").write_text(
            'class TaskMsg:\n    TYPE = "task"\n'
        )
        (root / "solver" / "process.py").write_text(
            textwrap.dedent(
                """
                class SolverProcess:
                    DATA_HANDLERS = {TaskMsg: "_on_task"}

                    def run(self):
                        self.send(TaskMsg())

                    def _on_task(self, env):
                        pass
                """
            )
        )
        codec = "_codec(PingMsg, lambda p: {}, lambda o: PingMsg())\n"
        (root / "backends" / "wire.py").write_text(
            codec if with_codec else "# no codecs registered\n"
        )
        return root

    def test_missing_codec_is_caught(self, tmp_path):
        findings = check_protocol(self._fake_root(tmp_path, with_codec=False))
        assert [(f.kind, f.subject) for f in findings] == [
            ("unencodable", "PingMsg")
        ]

    def test_registered_codec_is_clean(self, tmp_path):
        assert check_protocol(self._fake_root(tmp_path, with_codec=True)) == []


class TestCLI:
    def test_protocol_clean_exit_zero(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["protocol", "--src-root", str(SRC_ROOT)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_protocol_json_shape(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["protocol", "--json"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out == {"tool": "protocol", "findings": []}

    def test_all_subcommand(self, capsys):
        from repro.analysis.__main__ import main

        assert main(["all"]) == 0
        out = capsys.readouterr().out
        assert "lint:" in out and "protocol:" in out
