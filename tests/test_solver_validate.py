"""Tests for the post-run validator and the tree's critical-path analysis."""

import dataclasses

import pytest

from repro import run_factorization
from repro.matrices import generators as gen
from repro.solver.validate import validate_result
from repro.symbolic import analyze_matrix
from repro.symbolic.tree import AssemblyTree, Front


@pytest.fixture(scope="module")
def tree():
    return analyze_matrix(gen.grid_laplacian((12, 12, 5)), name="valgrid")


class TestCriticalPath:
    def test_chain_tree_path_is_total(self):
        fronts = [Front(id=0, npiv=4, nfront=8, parent=1),
                  Front(id=1, npiv=8, nfront=8, parent=-1, children=[0])]
        t = AssemblyTree(fronts)
        assert t.critical_path_flops() == pytest.approx(t.total_flops)
        assert t.average_parallelism() == pytest.approx(1.0)

    def test_star_tree_has_parallelism(self):
        leaves = [Front(id=i, npiv=8, nfront=16, parent=3) for i in range(3)]
        root = Front(id=3, npiv=16, nfront=16, parent=-1, children=[0, 1, 2])
        t = AssemblyTree(leaves + [root])
        assert t.average_parallelism() > 1.5

    def test_real_tree_bounds(self, tree):
        cp = tree.critical_path_flops()
        assert 0 < cp <= tree.total_flops
        assert tree.average_parallelism() >= 1.0


class TestValidateHappyPaths:
    @pytest.mark.parametrize("mechanism", [
        "naive", "increments", "snapshot", "partial_snapshot", "oracle",
    ])
    def test_every_mechanism_validates(self, tree, mechanism):
        r = run_factorization(tree, 8, mechanism=mechanism)
        report = validate_result(r, tree)
        assert report.ok, report.render()

    @pytest.mark.parametrize("strategy", ["workload", "memory"])
    def test_both_strategies_validate(self, tree, strategy):
        r = run_factorization(tree, 8, mechanism="increments", strategy=strategy)
        assert validate_result(r, tree).ok

    def test_threaded_validates(self, tree):
        from repro.solver import SolverConfig

        r = run_factorization(tree, 8, mechanism="snapshot",
                              config=SolverConfig(threaded=True))
        assert validate_result(r, tree).ok

    def test_render_mentions_ok(self, tree):
        r = run_factorization(tree, 4, mechanism="increments")
        assert "OK" in validate_result(r, tree).render()


class TestValidateCatchesCorruption:
    def test_wrong_factor_total_detected(self, tree):
        r = run_factorization(tree, 4, mechanism="increments")
        bad = dataclasses.replace(r, total_factor_entries=r.total_factor_entries * 2)
        report = validate_result(bad, tree)
        assert not report.ok
        assert any("factor entries" in f for f in report.failures)

    def test_impossible_time_detected(self, tree):
        r = run_factorization(tree, 4, mechanism="increments")
        bad = dataclasses.replace(r, factorization_time=1e-12)
        report = validate_result(bad, tree)
        assert not report.ok

    def test_wrong_decision_count_detected(self, tree):
        r = run_factorization(tree, 8, mechanism="increments")
        bad = dataclasses.replace(r, decisions=r.decisions + 5)
        assert not validate_result(bad, tree).ok

    def test_snapshot_without_snapshots_detected(self, tree):
        r = run_factorization(tree, 8, mechanism="snapshot")
        bad = dataclasses.replace(r, snapshot_count=0)
        if r.decisions > 0:
            assert not validate_result(bad, tree).ok

    def test_raise_on_failure(self, tree):
        r = run_factorization(tree, 4, mechanism="increments")
        bad = dataclasses.replace(r, factorization_time=1e-12)
        with pytest.raises(AssertionError):
            validate_result(bad, tree).raise_on_failure()

    def test_low_memory_detected(self, tree):
        import numpy as np

        r = run_factorization(tree, 4, mechanism="increments")
        bad = dataclasses.replace(r, peak_active=np.array([1.0] * 4))
        assert not validate_result(bad, tree).ok
