"""Unit + property tests for the elimination-tree machinery."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.matrices import generators as gen
from repro.symbolic.etree import (
    column_counts,
    elimination_tree,
    factor_nnz,
    postorder,
    tree_depth,
    validate_etree,
)
from repro.symbolic.graph import (
    adjacency_from_matrix,
    permute_symmetric,
    symmetrize_pattern,
)


def random_sym_pattern(n, density, seed):
    rng = np.random.default_rng(seed)
    m = max(n, int(density * n * n / 2))
    r = rng.integers(0, n, size=m)
    c = rng.integers(0, n, size=m)
    A = sp.coo_matrix((np.ones(m), (r, c)), shape=(n, n))
    return symmetrize_pattern(A + sp.eye(n))


class TestEliminationTree:
    def test_tridiagonal_is_a_path(self):
        A = gen.grid_laplacian((8,))
        parent = elimination_tree(symmetrize_pattern(A))
        assert list(parent) == [1, 2, 3, 4, 5, 6, 7, -1]

    def test_dense_matrix_is_a_path(self):
        A = sp.csr_matrix(np.ones((5, 5)))
        parent = elimination_tree(A)
        assert list(parent) == [1, 2, 3, 4, -1]

    def test_diagonal_matrix_is_a_forest_of_singletons(self):
        A = sp.eye(6, format="csr")
        parent = elimination_tree(A)
        assert list(parent) == [-1] * 6

    def test_parent_always_greater(self):
        A = random_sym_pattern(40, 0.1, 3)
        parent = elimination_tree(A)
        for j, p in enumerate(parent):
            assert p == -1 or p > j

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_etree_definition_holds(self, seed):
        """parent[j] is the smallest row below j with a factor entry."""
        A = random_sym_pattern(20, 0.15, seed)
        parent = elimination_tree(A)
        assert validate_etree(A, parent)


class TestPostorder:
    def test_children_before_parents(self):
        A = random_sym_pattern(50, 0.08, 1)
        parent = elimination_tree(A)
        post = postorder(parent)
        pos = {v: i for i, v in enumerate(post)}
        for j, p in enumerate(parent):
            if p != -1:
                assert pos[j] < pos[p]

    def test_postorder_is_a_permutation(self):
        A = random_sym_pattern(33, 0.1, 2)
        parent = elimination_tree(A)
        assert sorted(postorder(parent)) == list(range(33))

    def test_cycle_detected(self):
        with pytest.raises(ValueError):
            postorder(np.array([1, 0], dtype=np.int64))


class TestColumnCounts:
    def test_dense_counts(self):
        A = sp.csr_matrix(np.ones((6, 6)))
        parent = elimination_tree(A)
        cc = column_counts(A, parent)
        assert list(cc) == [6, 5, 4, 3, 2, 1]

    def test_diagonal_counts(self):
        A = sp.eye(4, format="csr")
        cc = column_counts(A, elimination_tree(A))
        assert list(cc) == [1, 1, 1, 1]

    def test_counts_bounded(self):
        A = random_sym_pattern(60, 0.07, 5)
        parent = elimination_tree(A)
        cc = column_counts(A, parent)
        n = A.shape[0]
        for j in range(n):
            assert 1 <= cc[j] <= n - j

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_counts_match_explicit_symbolic_factorization(self, seed):
        """Cross-check against a brute-force symbolic Cholesky."""
        n = 15
        A = random_sym_pattern(n, 0.2, seed)
        parent = elimination_tree(A)
        cc = column_counts(A, parent)
        # brute force: dense boolean elimination
        M = (A.toarray() != 0)
        for k in range(n):
            below = np.where(M[k+1:, k])[0] + k + 1
            for i in below:
                M[i, below] = True
        expected = [int(M[j:, j].sum()) for j in range(n)]
        assert list(cc) == expected

    def test_factor_nnz(self):
        A = sp.csr_matrix(np.ones((4, 4)))
        cc = column_counts(A, elimination_tree(A))
        assert factor_nnz(cc) == 10


class TestTreeDepth:
    def test_path_depth(self):
        A = gen.grid_laplacian((6,))
        parent = elimination_tree(symmetrize_pattern(A))
        assert tree_depth(parent) == 6

    def test_forest_depth(self):
        parent = np.array([-1, -1, -1], dtype=np.int64)
        assert tree_depth(parent) == 1


class TestPermutation:
    def test_permute_symmetric_roundtrip(self):
        A = random_sym_pattern(20, 0.2, 9)
        perm = np.random.default_rng(0).permutation(20)
        B = permute_symmetric(A, perm)
        # permuting back with the inverse recovers A's pattern
        inv = np.empty(20, dtype=np.int64)
        inv[perm] = np.arange(20)
        C = permute_symmetric(B, inv)
        assert (abs((A != 0).astype(int) - (C != 0).astype(int))).nnz == 0

    def test_bad_perm_rejected(self):
        A = random_sym_pattern(5, 0.5, 0)
        with pytest.raises(ValueError):
            permute_symmetric(A, np.array([0, 1, 2, 3, 3]))

    def test_fill_is_permutation_dependent_but_n_is_not(self):
        A = random_sym_pattern(30, 0.1, 4)
        perm = np.random.default_rng(1).permutation(30)
        B = permute_symmetric(A, perm)
        assert B.shape == A.shape


class TestAdjacency:
    def test_no_diagonal(self):
        A = random_sym_pattern(10, 0.3, 0)
        adj = adjacency_from_matrix(A)
        for v in range(10):
            assert v not in adj.neighbors(v)

    def test_degrees_match(self):
        A = gen.grid_laplacian((4, 4))
        adj = adjacency_from_matrix(A)
        corner_deg = adj.degree(0)
        assert corner_deg == 2
