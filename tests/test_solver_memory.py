"""Unit tests for the per-process memory tracker."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.solver.memory import MemoryTracker


class TestMemoryTracker:
    def test_alloc_free_roundtrip(self):
        t = MemoryTracker(rank=0)
        t.alloc_active(100)
        t.alloc_active(50)
        assert t.active == 150
        t.free_active(150)
        assert t.active == 0
        assert t.peak_active == 150

    def test_peak_tracks_maximum(self):
        t = MemoryTracker(rank=0)
        t.alloc_active(10)
        t.free_active(5)
        t.alloc_active(100)
        assert t.peak_active == 105

    def test_factors_counted_in_total_peak(self):
        t = MemoryTracker(rank=0)
        t.add_factors(40)
        t.alloc_active(10)
        assert t.peak_total == 50
        assert t.peak_active == 10

    def test_negative_free_rejected(self):
        t = MemoryTracker(rank=0)
        with pytest.raises(ValueError):
            t.free_active(-1)

    def test_overfree_rejected(self):
        t = MemoryTracker(rank=0)
        t.alloc_active(10)
        with pytest.raises(ValueError):
            t.free_active(20)

    def test_series_recording(self):
        t = MemoryTracker(rank=0, record_series=True)
        t.alloc_active(10, now=1.0)
        t.free_active(10, now=2.0)
        assert len(t.series) == 2
        assert t.series[0] == (1.0, 10.0)

    @given(st.lists(st.floats(0, 1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_peak_is_max_prefix_sum(self, allocs):
        t = MemoryTracker(rank=0)
        running = 0.0
        peak = 0.0
        for a in allocs:
            t.alloc_active(a)
            running += a
            peak = max(peak, running)
        assert t.active == pytest.approx(running)
        assert t.peak_active == pytest.approx(peak)
