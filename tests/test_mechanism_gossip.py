"""Tests for the gossip (epidemic, bounded-fanout) mechanism."""

import pytest

from repro import run_factorization
from repro.faults import FaultPlan
from repro.matrices import generators as gen
from repro.mechanisms import (
    GossipMechanism,
    Load,
    MechanismConfig,
    create_mechanism,
)
from repro.solver.driver import SolverConfig
from repro.symbolic import analyze_matrix

from helpers import make_world

PERIOD = 1e-3


def gossip_world(nprocs, fanout=2, period=PERIOD, **kw):
    cfg = MechanismConfig(gossip_fanout=fanout, gossip_period=period, **kw)
    return make_world(nprocs, lambda: GossipMechanism(cfg))


def init(procs):
    for p in procs:
        p.mechanism.initialize_view([Load.ZERO] * len(procs))


class TestGossipRounds:
    def test_registered(self):
        assert isinstance(create_mechanism("gossip"), GossipMechanism)

    def test_quiet_when_clean(self):
        sim, net, procs = gossip_world(4)
        init(procs)
        sim.run(until=0.01)
        assert net.stats.sent_total == 0

    def test_rumor_spreads_epidemically(self):
        sim, net, procs = gossip_world(8, fanout=3)
        init(procs)
        sim.schedule(1e-4, lambda: procs[0].mechanism.on_local_change(Load(50.0, 0.0)))
        sim.run(until=20 * PERIOD)
        knowing = sum(
            1 for p in procs[1:] if p.mechanism.view.get(0).workload == 50.0
        )
        # Forward-once push gossip is probabilistic, but fanout 3 on 8 ranks
        # reaches a clear majority within a couple of rounds.
        assert knowing >= 4

    def test_fanout_bounds_messages_per_round(self):
        sim, net, procs = gossip_world(8, fanout=2)
        init(procs)
        sim.schedule(1e-4, lambda: procs[0].mechanism.on_local_change(Load(50.0, 0.0)))
        # One round only: exactly the originator's fanout messages.
        sim.run(until=1.5 * PERIOD)
        assert net.stats.by_type["gossip_load"] == 2

    def test_burst_costs_one_rumor(self):
        sim, net, procs = gossip_world(4, fanout=1)
        init(procs)

        def burst():
            for _ in range(100):
                procs[0].mechanism.on_local_change(Load(1.0, 0.0))

        sim.schedule(1e-4, burst)
        sim.run(until=1.5 * PERIOD)
        assert net.stats.by_type["gossip_load"] == 1

    def test_version_merge_keeps_newest(self):
        sim, net, procs = gossip_world(2)
        init(procs)
        m1 = procs[1].mechanism
        m1._versions[0] = 5
        m1.view.set(0, Load(99.0, 0.0))
        from repro.mechanisms import GossipLoad
        from repro.simcore.network import Channel, Envelope

        stale = Envelope(
            src=0, dst=1, channel=Channel.STATE,
            payload=GossipLoad(entries={0: (3, Load(1.0, 0.0))}),
            size=60, send_time=0.0, deliver_time=0.0, seq=0,
        )
        m1.handle_message(stale)
        assert m1.view.get(0).workload == 99.0  # older version ignored
        fresh = Envelope(
            src=0, dst=1, channel=Channel.STATE,
            payload=GossipLoad(entries={0: (6, Load(7.0, 0.0))}),
            size=60, send_time=0.0, deliver_time=0.0, seq=1,
        )
        m1.handle_message(fresh)
        assert m1.view.get(0).workload == 7.0

    def test_no_reservation_broadcast(self):
        sim, net, procs = gossip_world(4)
        init(procs)
        procs[0].mechanism.record_decision({1: Load(10.0, 0.0)})
        procs[0].mechanism.decision_complete()
        sim.run(until=5 * PERIOD)
        assert net.stats.sent_total == 0
        # ...but the master's own view was patched optimistically.
        assert procs[0].mechanism.view.get(1).workload == 10.0

    def test_no_more_master_suppressed(self):
        sim, net, procs = gossip_world(4)
        init(procs)
        procs[0].mechanism.declare_no_more_master()
        sim.run(until=PERIOD)
        assert net.stats.by_type.get("no_more_master", 0) == 0

    def test_shutdown_stops_timer(self):
        sim, net, procs = gossip_world(2)
        init(procs)
        for p in procs:
            p.mechanism.shutdown()
        assert sim.run(until=1.0) in ("drained", "horizon")
        assert net.stats.sent_total == 0


class TestGossipInSolver:
    @pytest.fixture(scope="class")
    def tree(self):
        return analyze_matrix(gen.grid_laplacian((12, 12, 4)), name="gossipgrid")

    def test_factorization_completes_and_validates(self, tree):
        from repro.solver import validate_result

        r = run_factorization(tree, 8, mechanism="gossip")
        assert r.factorization_time > 0
        assert validate_result(r, tree).ok

    def test_same_seed_identical_results(self, tree):
        a = run_factorization(tree, 8, mechanism="gossip", config=SolverConfig(seed=3))
        b = run_factorization(tree, 8, mechanism="gossip", config=SolverConfig(seed=3))
        assert a.factorization_time == b.factorization_time
        assert a.state_messages == b.state_messages
        assert a.messages_by_type == b.messages_by_type
        assert a.events_executed == b.events_executed

    def test_different_seed_different_targets(self, tree):
        a = run_factorization(tree, 8, mechanism="gossip", config=SolverConfig(seed=3))
        b = run_factorization(tree, 8, mechanism="gossip", config=SolverConfig(seed=4))
        # The fanout target choice is seed-derived; message flow differs.
        assert (
            a.messages_by_type != b.messages_by_type
            or a.events_executed != b.events_executed
        )

    def test_ring_topology_also_works(self, tree):
        cfg = SolverConfig(topology="ring", topology_degree=2)
        r = run_factorization(tree, 8, mechanism="gossip", config=cfg)
        assert r.factorization_time > 0

    def test_metrics_families(self, tree):
        r = run_factorization(
            tree, 8, mechanism="gossip", config=SolverConfig(metrics=True)
        )
        fams = r.metrics["families"]
        assert "gossip_rounds_total" in fams
        assert "fanout_messages_total" in fams
        assert "view_staleness_seconds" in fams


class TestGossipChaos:
    """Gossip survives lossy networks — with and without the recovery layer."""

    @pytest.fixture(scope="class")
    def tree(self):
        return analyze_matrix(gen.grid_laplacian((10, 10, 4)), name="gossipchaos")

    @pytest.mark.parametrize("resilience", [True, False])
    def test_completes_under_20pct_state_loss(self, tree, resilience):
        from repro.solver import validate_result

        cfg = SolverConfig(
            fault_plan=FaultPlan.uniform_loss(0.20),
            resilience=resilience,
        )
        r = run_factorization(tree, 8, mechanism="gossip", config=cfg)
        assert (r.fault_stats or {}).get("dropped", 0) > 0
        assert validate_result(r, tree).ok
