"""Tests for the mechanism registry listing and its error messages."""

import pytest

from repro.mechanisms import (
    MECHANISM_NAMES,
    available_mechanisms,
    create_mechanism,
    mechanism_class,
)


class TestAvailableMechanisms:
    def test_paper_mechanisms_first_then_extensions_sorted(self):
        names = available_mechanisms()
        assert names[: len(MECHANISM_NAMES)] == MECHANISM_NAMES
        extensions = names[len(MECHANISM_NAMES):]
        assert list(extensions) == sorted(extensions)
        assert set(names) >= {
            "gossip", "neighborhood", "tree_agg",
            "oracle", "partial_snapshot", "periodic",
        }

    def test_every_listed_name_instantiates(self):
        for name in available_mechanisms():
            assert create_mechanism(name).name == name

    def test_unknown_name_error_lists_available(self):
        with pytest.raises(KeyError, match="gossip"):
            mechanism_class("definitely_not_a_mechanism")
