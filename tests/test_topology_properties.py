"""Property-based tests for :mod:`repro.topology` (Hypothesis).

Every constructor must yield a symmetric, self-loop-free, *connected*
adjacency (``Topology._validate`` enforces this at construction — these
tests check it holds over the whole parameter space, not just the handful
of shapes the unit tests pin); ``build_topology`` must be a pure function
of ``(kind, nprocs, degree, seed)``; and ``aggregation_tree`` must be a
spanning tree: every rank reached, exactly ``nprocs - 1`` edges, no
cycles, children consistent with parents.
"""

from hypothesis import given, settings, strategies as st

from repro.topology import Topology, build_topology
from repro.topology.graph import TOPOLOGY_KINDS

kinds = st.sampled_from(TOPOLOGY_KINDS)
nprocs_s = st.integers(min_value=1, max_value=48)
degree_s = st.integers(min_value=0, max_value=8)
seed_s = st.integers(min_value=0, max_value=2**31 - 1)


def assert_valid_adjacency(topo: Topology) -> None:
    n = topo.nprocs
    for r in range(n):
        ns = topo.neighbors(r)
        assert list(ns) == sorted(set(ns)), "adjacency must be sorted, unique"
        assert r not in ns, "no self-loops"
        for v in ns:
            assert 0 <= v < n
            assert r in topo.neighbors(v), f"edge {r}-{v} must be symmetric"


def assert_connected(topo: Topology) -> None:
    n = topo.nprocs
    seen = {0}
    stack = [0]
    while stack:
        u = stack.pop()
        for v in topo.neighbors(u):
            if v not in seen:
                seen.add(v)
                stack.append(v)
    assert len(seen) == n, f"{topo.kind} graph is disconnected"


class TestConstructorInvariants:
    @given(kind=kinds, nprocs=nprocs_s, degree=degree_s, seed=seed_s)
    @settings(max_examples=120, deadline=None)
    def test_symmetric_connected(self, kind, nprocs, degree, seed):
        topo = build_topology(kind, nprocs, degree=degree, seed=seed)
        assert topo.nprocs == nprocs
        assert_valid_adjacency(topo)
        assert_connected(topo)

    @given(kind=kinds, nprocs=st.integers(min_value=2, max_value=48),
           degree=degree_s, seed=seed_s)
    @settings(max_examples=60, deadline=None)
    def test_edges_and_distances_consistent(self, kind, nprocs, degree, seed):
        topo = build_topology(kind, nprocs, degree=degree, seed=seed)
        for a, b in topo.edges:
            assert a < b
            assert topo.distance(a, b) == 1
        # connectivity again, through the distance API
        assert all(topo.distance(0, r) >= 0 for r in range(nprocs))


class TestDeterminism:
    @given(kind=kinds, nprocs=nprocs_s, degree=degree_s, seed=seed_s)
    @settings(max_examples=60, deadline=None)
    def test_same_inputs_same_graph(self, kind, nprocs, degree, seed):
        a = build_topology(kind, nprocs, degree=degree, seed=seed)
        b = build_topology(kind, nprocs, degree=degree, seed=seed)
        assert [a.neighbors(r) for r in range(nprocs)] == [
            b.neighbors(r) for r in range(nprocs)
        ]

    @given(nprocs=st.integers(min_value=8, max_value=48),
           seed1=seed_s, seed2=seed_s)
    @settings(max_examples=40, deadline=None)
    def test_kreg_seed_only_affects_chords(self, nprocs, seed1, seed2):
        # Different seeds may change the chords, but every sample must keep
        # the ring backbone (so connectivity never depends on the seed).
        for seed in (seed1, seed2):
            topo = build_topology("kreg", nprocs, seed=seed)
            for r in range(nprocs):
                assert (r + 1) % nprocs in topo.neighbors(r)
                assert (r - 1) % nprocs in topo.neighbors(r)


class TestAggregationTree:
    @given(kind=kinds, nprocs=nprocs_s, degree=degree_s, seed=seed_s,
           root_pick=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=120, deadline=None)
    def test_spanning_tree(self, kind, nprocs, degree, seed, root_pick):
        topo = build_topology(kind, nprocs, degree=degree, seed=seed)
        root = root_pick % nprocs
        parents, children = topo.aggregation_tree(root)
        assert len(parents) == nprocs and len(children) == nprocs
        assert parents[root] == -1
        # exactly nprocs-1 tree edges, every non-root has a parent
        assert sum(1 for p in parents if p >= 0) == nprocs - 1
        # children lists are the exact inverse of parents
        derived = [[] for _ in range(nprocs)]
        for r, p in enumerate(parents):
            if p >= 0:
                derived[p].append(r)
        assert [tuple(sorted(c)) for c in derived] == list(children)
        # every rank reaches the root by walking parents, without cycles
        for r in range(nprocs):
            hops = 0
            cur = r
            while cur != root:
                cur = parents[cur]
                hops += 1
                assert cur >= 0, f"rank {r} walks off the tree"
                assert hops <= nprocs, f"cycle above rank {r}"

    @given(nprocs=st.integers(min_value=2, max_value=48),
           arity=st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_tree_kind_recovers_construction_tree(self, nprocs, arity):
        topo = build_topology("tree", nprocs, degree=arity)
        parents, _ = topo.aggregation_tree(0)
        for r in range(1, nprocs):
            assert parents[r] == (r - 1) // arity
