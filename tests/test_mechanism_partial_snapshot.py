"""Tests for the partial-snapshot extension (paper's perspectives §5)."""

import pytest

from repro import run_factorization
from repro.matrices import generators as gen
from repro.mechanisms import (
    Load,
    MechanismConfig,
    PartialSnapshotMechanism,
    create_mechanism,
)
from repro.solver.driver import SolverConfig
from repro.symbolic import analyze_matrix

from helpers import make_world


def pworld(nprocs, group_size=3, **kw):
    cfg = MechanismConfig(snapshot_group_size=group_size)
    factory = lambda: PartialSnapshotMechanism(cfg)
    return make_world(nprocs, factory, **kw)


def decide(proc, assignments, views):
    def callback(view):
        views.append((proc.rank, view))
        if assignments:
            proc.mechanism.record_decision(assignments)
        proc.mechanism.decision_complete()

    proc.mechanism.request_view(callback)


class TestGroupSelection:
    def test_registered_in_registry(self):
        m = create_mechanism("partial_snapshot")
        assert isinstance(m, PartialSnapshotMechanism)

    def test_group_contains_self_plus_k(self):
        sim, net, procs, = pworld(8)
        m = procs[2].mechanism
        group = m._choose_group()
        assert 2 in group
        assert len(group) == 4  # self + group_size

    def test_group_rotates_between_decisions(self):
        sim, net, procs = pworld(8)
        m = procs[0].mechanism
        g1 = set(m._choose_group())
        g2 = set(m._choose_group())
        assert g1 != g2

    def test_degenerate_full_group(self):
        sim, net, procs = pworld(3, group_size=10)
        m = procs[0].mechanism
        assert m._choose_group() is None  # falls back to the full protocol
        assert set(m.decision_candidates()) == {1, 2}


class TestPartialProtocol:
    def test_only_group_members_involved(self):
        sim, net, procs = pworld(8, group_size=3)
        views = []
        sim.schedule(0.0, lambda: decide(procs[0], {}, views))
        sim.run()
        assert len(views) == 1
        # 3 start + 3 snp + 3 end = 9 messages, not ~21
        assert net.stats.state_message_count() == 9

    def test_non_members_never_blocked(self):
        sim, net, procs = pworld(8, group_size=3)
        views = []
        blocked_snapshot = []

        def probe():
            # group of P0 = {1,2,3}; P7 must be unaffected
            blocked_snapshot.append(procs[7].mechanism.blocks_tasks())

        sim.schedule(0.0, lambda: decide(procs[0], {}, views))
        sim.schedule(1e-5, probe)
        sim.run()
        assert blocked_snapshot == [False]
        assert views

    def test_candidates_match_group(self):
        sim, net, procs = pworld(8, group_size=3)
        views = []
        sim.schedule(0.0, lambda: decide(procs[0], {}, views))
        sim.run()
        cands = procs[0].mechanism.decision_candidates()
        assert len(cands) == 3 and 0 not in cands

    def test_concurrent_initiators_both_complete(self):
        # P0's first group is {1,2,3}; P4's is {0,1,2} (window starts at the
        # first other rank) — they overlap on {1,2}, so the shared members
        # serialize the two snapshots; both must still complete.
        sim, net, procs = pworld(8, group_size=3)
        views = []
        sim.schedule(0.0, lambda: decide(procs[0], {1: Load(5, 0)}, views))
        sim.schedule(0.0, lambda: decide(procs[4], {5: Load(7, 0)}, views))
        sim.run()
        assert len(views) == 2
        # both sets of reservations applied
        assert procs[1].mechanism.my_load.workload == 5
        assert procs[5].mechanism.my_load.workload == 7

    def test_overlapping_groups_sequentialized(self):
        # Small world: groups of size 3 out of 4 always overlap.
        sim, net, procs = pworld(4, group_size=3)
        views = []
        sim.schedule(0.0, lambda: decide(procs[0], {1: Load(10, 0)}, views))
        sim.schedule(0.0, lambda: decide(procs[1], {2: Load(20, 0)}, views))
        sim.run()
        assert [r for r, _ in views] == [0, 1]
        # P1's later snapshot observed P0's reservation on P1 itself
        assert views[1][1].get(1).workload >= 10

    def test_all_mechanics_unblocked_at_end(self):
        sim, net, procs = pworld(6, group_size=3)
        views = []
        for r in (0, 2, 4):
            sim.schedule(0.0, lambda r=r: decide(procs[r], {}, views))
        sim.run()
        assert len(views) == 3
        for p in procs:
            assert not p.mechanism.blocks_tasks(), p.mechanism.debug_state()


class TestPartialInSolver:
    @pytest.fixture(scope="class")
    def tree(self):
        return analyze_matrix(gen.grid_laplacian((12, 12, 4)), name="pgrid")

    def test_factorization_completes(self, tree):
        cfg = SolverConfig(snapshot_group_size=4)
        r = run_factorization(tree, 8, mechanism="partial_snapshot", config=cfg)
        assert r.factorization_time > 0
        assert r.total_factor_entries == pytest.approx(tree.total_factor_entries)

    def test_fewer_messages_than_full_snapshot(self, tree):
        full = run_factorization(tree, 8, mechanism="snapshot")
        part = run_factorization(
            tree, 8, mechanism="partial_snapshot",
            config=SolverConfig(snapshot_group_size=3),
        )
        assert part.state_messages < full.state_messages

    def test_faster_than_full_snapshot(self, tree):
        full = run_factorization(tree, 8, mechanism="snapshot",
                                 strategy="workload")
        part = run_factorization(
            tree, 8, mechanism="partial_snapshot", strategy="workload",
            config=SolverConfig(snapshot_group_size=4),
        )
        assert part.factorization_time <= full.factorization_time * 1.05
