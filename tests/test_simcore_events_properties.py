"""Property tests for :class:`repro.simcore.events.EventQueue`.

Random interleavings of push / pop / cancel / peek_time must preserve the
queue's contract regardless of schedule shape:

* pops come out in nondecreasing ``(time, priority, seq)`` order,
* ``len()`` always equals the number of live (pushed − popped − cancelled)
  events,
* ``cancel`` is idempotent and skips exactly the cancelled events,
* ``peek_time`` is read-only: it never changes what pops afterwards.
"""

from hypothesis import given, settings, strategies as st

from repro.simcore.events import EventQueue

# One queue operation: (op, payload).  Payloads index previously pushed
# events for cancel, or give (time, priority) for push.
_push = st.tuples(
    st.just("push"),
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=20),
    ),
)
_pop = st.tuples(st.just("pop"), st.none())
_cancel = st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200))
_peek = st.tuples(st.just("peek"), st.none())

_ops = st.lists(st.one_of(_push, _pop, _cancel, _peek), max_size=120)


def _apply(q, ops):
    """Run an op sequence; returns (pushed, popped, cancelled_live) lists.

    ``cancelled_live`` holds the events that were cancelled while still in
    the queue — cancelling an event that already popped is legal but must
    not (and cannot) un-deliver it.
    """
    pushed, popped, cancelled_live = [], [], []
    shadow = {}  # id -> event, the events a correct queue still owes us
    for op, payload in ops:
        if op == "push":
            t, prio = payload
            ev = q.push(t, lambda: None, priority=prio)
            pushed.append(ev)
            shadow[id(ev)] = ev
        elif op == "pop":
            ev = q.pop()
            if ev is None:
                assert not shadow
            else:
                # Each pop must return the *minimum* live key of the moment
                # (global sortedness only holds without interleaved pushes).
                best = min(
                    (e.time, e.priority, e.seq) for e in shadow.values()
                )
                assert (ev.time, ev.priority, ev.seq) == best
                popped.append(ev)
                del shadow[id(ev)]
        elif op == "cancel" and pushed:
            target = pushed[payload % len(pushed)]
            if id(target) in shadow:
                cancelled_live.append(target)
                del shadow[id(target)]
            q.cancel(target)
        elif op == "peek":
            t = q.peek_time()
            if shadow:
                assert t == min(e.time for e in shadow.values())
            else:
                assert t is None
    return pushed, popped, cancelled_live


@given(_ops)
@settings(max_examples=200, deadline=None)
def test_pops_nondecreasing_and_len_matches(ops):
    q = EventQueue()
    pushed, popped, cancelled_live = _apply(q, ops)

    # Drain what's left: with no more pushes interleaved, the tail of the
    # pop sequence must come out in nondecreasing (time, priority, seq).
    drained = []
    while True:
        ev = q.pop()
        if ev is None:
            break
        drained.append(ev)
    assert len(q) == 0

    keys = [(ev.time, ev.priority, ev.seq) for ev in drained]
    assert keys == sorted(keys)
    popped.extend(drained)
    # Exactly the never-live-cancelled events come out, each exactly once:
    live_cancelled_ids = {id(ev) for ev in cancelled_live}
    assert all(id(ev) not in live_cancelled_ids for ev in popped)
    expected = [ev for ev in pushed if id(ev) not in live_cancelled_ids]
    assert sorted(ev.seq for ev in popped) == sorted(ev.seq for ev in expected)


@given(_ops)
@settings(max_examples=150, deadline=None)
def test_len_counts_live_events_at_every_step(ops):
    q = EventQueue()
    pushed, popped = [], []
    for op, payload in ops:
        if op == "push":
            t, prio = payload
            pushed.append(q.push(t, lambda: None, priority=prio))
        elif op == "pop":
            ev = q.pop()
            if ev is not None:
                popped.append(ev)
        elif op == "cancel" and pushed:
            q.cancel(pushed[payload % len(pushed)])
        elif op == "peek":
            q.peek_time()
        n_popped = len(popped)
        popped_ids = {id(ev) for ev in popped}
        n_cancelled_unpopped = sum(
            1 for ev in pushed if ev.cancelled and id(ev) not in popped_ids
        )
        assert len(q) == len(pushed) - n_popped - n_cancelled_unpopped


@given(_ops, st.integers(min_value=0, max_value=200))
@settings(max_examples=150, deadline=None)
def test_cancel_is_idempotent(ops, idx):
    q = EventQueue()
    pushed, _, _ = _apply(q, ops)
    if not pushed:
        return
    target = pushed[idx % len(pushed)]
    q.cancel(target)
    n = len(q)
    q.cancel(target)  # double-cancel via the queue
    target.cancel()  # and via the event itself
    q.cancel(target)
    assert len(q) == n
    assert all(ev is not target for ev in iter(q.pop, None))


@given(_ops)
@settings(max_examples=150, deadline=None)
def test_peek_time_never_changes_pop_order(ops):
    a, b = EventQueue(), EventQueue()
    # Same op sequence, but `b` peeks obsessively between every step.
    for op, payload in ops:
        for q, peeky in ((a, False), (b, True)):
            if peeky:
                q.peek_time()
            if op == "push":
                t, prio = payload
                q.push(t, lambda: None, priority=prio)
            elif op == "pop":
                q.pop()
            elif op == "cancel":
                pass  # cancel handles are per-queue; covered elsewhere
            elif op == "peek":
                q.peek_time()
            if peeky:
                q.peek_time()
    # Drain both; peek agrees with pop on the head at every step of `a`.
    seq_a = []
    while True:
        t = a.peek_time()
        ev = a.pop()
        if ev is None:
            assert t is None
            break
        assert t == ev.time
        seq_a.append((ev.time, ev.priority, ev.seq))
    seq_b = [(ev.time, ev.priority, ev.seq) for ev in iter(b.pop, None)]
    assert seq_a == seq_b
