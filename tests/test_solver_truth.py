"""Tests for the ground-truth tracker and per-decision view errors."""

import pytest

from repro import run_factorization
from repro.matrices import generators as gen
from repro.mechanisms.view import Load, LoadView
from repro.solver.truth import DecisionLog, DecisionRecord, TruthTracker
from repro.symbolic import analyze_matrix


@pytest.fixture(scope="module")
def tree():
    return analyze_matrix(gen.grid_laplacian((14, 14, 5)), name="truthgrid")


class TestTruthTracker:
    def test_local_changes_accumulate(self):
        t = TruthTracker(3)
        t.local_change(0, Load(10.0, 2.0), slave_task=False)
        t.local_change(0, Load(-4.0, 0.0), slave_task=False)
        assert t.view.get(0) == Load(6.0, 2.0)

    def test_positive_slave_change_skipped(self):
        t = TruthTracker(2)
        t.reserve({1: Load(10.0, 1.0)})
        t.local_change(1, Load(10.0, 1.0), slave_task=True)  # arrival
        assert t.view.get(1) == Load(10.0, 1.0)  # not double-counted

    def test_negative_slave_change_applied(self):
        t = TruthTracker(2)
        t.reserve({1: Load(10.0, 1.0)})
        t.local_change(1, Load(-10.0, -1.0), slave_task=True)  # completion
        assert t.view.get(1) == Load(0.0, 0.0)

    def test_errors_zero_for_exact_view(self):
        t = TruthTracker(3)
        t.initialize([Load(5.0, 1.0), Load(3.0, 2.0), Load(0.0, 0.0)])
        view = t.view.copy()
        assert t.errors_against(view) == (0.0, 0.0)

    def test_errors_exclude_master(self):
        t = TruthTracker(2)
        t.initialize([Load(100.0, 0.0), Load(10.0, 0.0)])
        view = LoadView(2)  # knows nothing
        view.set(1, Load(10.0, 0.0))
        err_w, _ = t.errors_against(view, exclude=0)
        assert err_w == 0.0  # rank 0's error is excluded

    def test_errors_bounded_for_stale_views(self):
        t = TruthTracker(2)
        t.initialize([Load(0.0, 0.0), Load(0.0, 0.0)])
        stale = LoadView(2)
        stale.set(1, Load(1e9, 1e9))
        err_w, err_m = t.errors_against(stale, exclude=0)
        assert err_w <= 1.0 and err_m <= 1.0


class TestDecisionLog:
    def test_aggregates(self):
        log = DecisionLog()
        log.add(DecisionRecord(0.1, 0, 5, 3, 0.2, 0.4))
        log.add(DecisionRecord(0.2, 1, 6, 2, 0.4, 0.0))
        assert len(log) == 2
        assert log.mean_error_workload == pytest.approx(0.3)
        assert log.mean_error_memory == pytest.approx(0.2)
        assert log.max_error_workload == pytest.approx(0.4)

    def test_empty_log(self):
        log = DecisionLog()
        assert log.mean_error_workload == 0.0


class TestViewErrorHierarchy:
    """The quantified version of the paper's view-correctness ranking."""

    @pytest.fixture(scope="class")
    def errors(self, tree):
        out = {}
        for mech in ("oracle", "snapshot", "increments", "naive"):
            r = run_factorization(tree, 8, mechanism=mech, strategy="memory")
            out[mech] = r.mean_view_error_workload
        return out

    def test_oracle_and_snapshot_exact(self, errors):
        assert errors["oracle"] == 0.0
        assert errors["snapshot"] == pytest.approx(0.0, abs=1e-12)

    def test_increments_small_but_nonzero_allowed(self, errors):
        assert errors["increments"] < 0.2

    def test_naive_worse_than_increments(self, errors):
        assert errors["naive"] > errors["increments"]

    def test_decision_log_attached_to_results(self, tree):
        r = run_factorization(tree, 8, mechanism="increments")
        assert r.decision_log is not None
        assert len(r.decision_log) == r.decisions
        for rec in r.decision_log.records:
            assert rec.nslaves > 0
            assert rec.time >= 0.0

    def test_to_dict_includes_errors(self, tree):
        r = run_factorization(tree, 8, mechanism="naive")
        d = r.to_dict()
        assert "mean_view_error_workload" in d
