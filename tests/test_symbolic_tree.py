"""Tests for supernode amalgamation, assembly trees and cost models."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.matrices import collection, generators as gen
from repro.symbolic import costs
from repro.symbolic.driver import AnalysisParams, analyze_matrix, analyze_problem
from repro.symbolic.etree import column_counts, elimination_tree, postorder
from repro.symbolic.graph import permute_symmetric, symmetrize_pattern
from repro.symbolic.ordering import nested_dissection
from repro.symbolic.supernodes import fundamental_supernodes, relaxed_amalgamation
from repro.symbolic.tree import AssemblyTree, Front


def make_supernodes(A, **amalg):
    B = symmetrize_pattern(A)
    perm = nested_dissection(B, leaf_size=8)
    Bp = permute_symmetric(B, perm)
    parent = elimination_tree(Bp)
    post = postorder(parent)
    Bp2 = permute_symmetric(B, perm[post])
    parent2 = elimination_tree(Bp2)
    cc = column_counts(Bp2, parent2)
    sn = fundamental_supernodes(parent2, cc)
    if amalg:
        sn = relaxed_amalgamation(sn, **amalg)
    return sn


class TestSupernodes:
    def test_columns_partition_variables(self):
        A = gen.grid_laplacian((8, 8))
        sn = make_supernodes(A)
        cols = sorted(c for s in sn for c in s.columns)
        assert cols == list(range(64))

    def test_amalgamation_preserves_partition(self):
        A = gen.grid_laplacian((8, 8))
        sn = make_supernodes(A, small_child=2, fill_tolerance=0.05, max_npiv=16)
        cols = sorted(c for s in sn for c in s.columns)
        assert cols == list(range(64))

    def test_amalgamation_does_not_mutate_input(self):
        A = gen.grid_laplacian((8, 8))
        sn = make_supernodes(A)
        before = [(s.npiv, s.nfront, tuple(s.columns)) for s in sn]
        relaxed_amalgamation(sn, small_child=4, fill_tolerance=0.1, max_npiv=32)
        after = [(s.npiv, s.nfront, tuple(s.columns)) for s in sn]
        assert before == after

    def test_amalgamation_reduces_count_monotonically_in_max_npiv(self):
        A = gen.grid_laplacian((10, 10))
        sn = make_supernodes(A)
        n8 = len(relaxed_amalgamation(sn, small_child=2, fill_tolerance=0.02, max_npiv=8))
        n32 = len(relaxed_amalgamation(sn, small_child=2, fill_tolerance=0.02, max_npiv=32))
        assert n32 <= n8 <= len(sn)

    def test_parent_links_form_forest(self):
        A = gen.grid_laplacian((9, 9))
        sn = make_supernodes(A, small_child=2, fill_tolerance=0.05, max_npiv=16)
        tree = AssemblyTree.from_supernodes(sn)
        order = tree.topological_order()  # raises if not a forest
        assert len(order) == len(sn)

    def test_nfront_at_least_npiv(self):
        A = gen.grid_stencil_27pt((6, 6, 6))
        sn = make_supernodes(A, small_child=2, fill_tolerance=0.05, max_npiv=24)
        for s in sn:
            assert s.nfront >= s.npiv


class TestAssemblyTree:
    @pytest.fixture(scope="class")
    def tree(self):
        return analyze_matrix(gen.grid_laplacian((12, 12)), name="grid12")

    def test_postorder_children_first(self, tree):
        pos = {fid: i for i, fid in enumerate(tree.postorder())}
        for f in tree:
            if f.parent != -1:
                assert pos[f.id] < pos[f.parent]

    def test_subtree_flops_consistent(self, tree):
        w = tree.subtree_flops()
        for f in tree:
            expected = f.flops + sum(w[c] for c in f.children)
            assert w[f.id] == pytest.approx(expected)

    def test_root_subtree_flops_equals_total(self, tree):
        w = tree.subtree_flops()
        assert sum(w[r] for r in tree.roots) == pytest.approx(tree.total_flops)

    def test_nvars_preserved(self, tree):
        assert tree.nvars == 144

    def test_depths_consistent(self, tree):
        for f in tree:
            if f.parent != -1:
                assert f.depth == tree[f.parent].depth + 1
            else:
                assert f.depth == 0

    def test_subtree_nodes(self, tree):
        root = tree.roots[0]
        sub = tree.subtree_nodes(root)
        assert root in sub

    def test_sequential_peak_at_least_largest_front(self, tree):
        assert tree.sequential_peak_memory() >= max(f.front_entries for f in tree)

    def test_summary_mentions_name(self, tree):
        assert "grid12" in tree.summary()


class TestCostModels:
    def test_full_factorization_matches_cube_law(self):
        # npiv == nfront == n: classical dense LU ~ 2/3 n^3
        n = 100
        f = costs.factor_flops(n, n, sym=False)
        assert f == pytest.approx(2 / 3 * n**3, rel=0.05)

    def test_symmetric_is_half(self):
        assert costs.factor_flops(50, 80, True) == pytest.approx(
            costs.factor_flops(50, 80, False) / 2
        )

    def test_master_plus_slaves_close_to_total(self):
        """The 1D-row split must account for (nearly) all the front's flops."""
        npiv, nfront = 40, 200
        total = costs.factor_flops(npiv, nfront)
        split = costs.master_flops(npiv, nfront) + costs.slave_flops_total(npiv, nfront)
        assert split == pytest.approx(total, rel=0.15)

    @given(st.integers(1, 300), st.integers(0, 300))
    @settings(max_examples=50, deadline=None)
    def test_costs_nonnegative_and_monotone(self, npiv, extra):
        nfront = npiv + extra
        assert costs.factor_flops(npiv, nfront) >= 0
        assert costs.master_flops(npiv, nfront) >= 0
        assert costs.slave_flops_total(npiv, nfront) >= 0
        assert costs.master_flops(npiv, nfront) <= costs.factor_flops(npiv, nfront) + 1e-9

    def test_entries_identity(self):
        # factor + CB = full front
        assert (costs.factor_entries(30, 100) + costs.cb_entries(30, 100)
                == costs.front_entries(30, 100))

    def test_degenerate_zero_pivots(self):
        assert costs.factor_flops(0, 10) == 0.0
        assert costs.cb_entries(10, 10) == 0

    def test_front_properties(self):
        f = Front(id=0, npiv=10, nfront=50)
        assert f.border == 40
        assert f.cb_entries == 1600
        assert f.master_entries == 500
        assert f.flops > 0


class TestDriver:
    def test_analyze_problem_cached(self):
        p = collection.get("TWOTONE")
        t1 = analyze_problem(p)
        t2 = analyze_problem(p)
        assert t1 is t2

    def test_params_affect_front_count(self):
        A = gen.grid_laplacian((10, 10, 4))
        coarse = analyze_matrix(A, params=AnalysisParams(amalg_max_npiv=64))
        fine = analyze_matrix(A, params=AnalysisParams(amalg_max_npiv=8))
        assert len(fine) > len(coarse)

    def test_nvars_equals_matrix_order(self):
        A = gen.circuit_like(400)
        tree = analyze_matrix(A, sym=False)
        assert tree.nvars == 400
