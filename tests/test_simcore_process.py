"""Unit tests for the process model: Algorithm 1 semantics.

These pin the paper's execution model: state messages have priority over data
messages, which have priority over starting tasks; a process cannot treat a
message and compute simultaneously; the threaded variant treats state
messages during computation and supports pause/resume.
"""

import pytest

from repro.simcore import Channel, NetworkConfig, ProtocolError
from repro.simcore.network import Payload

from helpers import make_world


class Note(Payload):
    TYPE = "note"


class TestPriorities:
    def test_state_before_data_before_task(self):
        # Zero latency so both messages are deliverable at t=0, before the
        # process's first dispatch runs.
        sim, net, procs = make_world(
            2, config=NetworkConfig(latency=0.0, bandwidth=float("inf"))
        )
        order = []
        p1 = procs[1]
        p1.handle_state = lambda env: order.append("state")
        p1.handle_data = lambda env: order.append("data")
        # Make everything available at the same instant, before P1 dispatches.
        net.send(0, 1, Channel.DATA, Note(), charge_sender=False)
        net.send(0, 1, Channel.STATE, Note(), charge_sender=False)
        p1.queue_task(1e-3, on_complete=lambda: order.append("task"))
        sim.run()
        assert order == ["state", "data", "task"]

    def test_messages_wait_for_running_task(self):
        cfg = NetworkConfig(latency=1e-6)
        sim, net, procs = make_world(2, config=cfg)
        p1 = procs[1]
        treated_at = []
        p1.handle_data = lambda env: treated_at.append(sim.now)
        p1.queue_task(1.0)  # long task starts at t=0
        sim.schedule(0.5, lambda: net.send(0, 1, Channel.DATA, Note(),
                                           charge_sender=False))
        sim.run()
        # The message arrived at ~0.5 but is only treated once the task ends.
        assert treated_at[0] >= 1.0

    def test_one_message_at_a_time(self):
        cfg = NetworkConfig(recv_overhead=1e-3, latency=1e-6)
        sim, net, procs = make_world(2, config=cfg)
        p1 = procs[1]
        treated_at = []
        p1.handle_data = lambda env: treated_at.append(sim.now)
        for _ in range(3):
            net.send(0, 1, Channel.DATA, Note(), charge_sender=False)
        sim.run()
        assert len(treated_at) == 3
        # Each treatment is separated by the per-message cost.
        assert treated_at[1] - treated_at[0] >= 1e-3
        assert treated_at[2] - treated_at[1] >= 1e-3


class TestTaskExecution:
    def test_task_hooks_and_duration(self):
        sim, net, procs = make_world(1)
        p = procs[0]
        marks = []
        p.queue_task(2.0, on_start=lambda: marks.append(("start", sim.now)),
                     on_complete=lambda: marks.append(("end", sim.now)))
        sim.run()
        assert marks == [("start", 0.0), ("end", 2.0)]
        assert p.stats_tasks_run == 1

    def test_tasks_run_sequentially(self):
        sim, net, procs = make_world(1)
        p = procs[0]
        ends = []
        p.queue_task(1.0, on_complete=lambda: ends.append(sim.now))
        p.queue_task(2.0, on_complete=lambda: ends.append(sim.now))
        sim.run()
        assert ends == [1.0, 3.0]

    def test_charge_during_completion_extends_busy(self):
        sim, net, procs = make_world(1)
        p = procs[0]
        starts = []
        p.queue_task(1.0, on_complete=lambda: p.charge(0.5))
        p.queue_task(1.0, on_start=lambda: starts.append(sim.now))
        sim.run()
        assert starts == [pytest.approx(1.5)]

    def test_blocked_process_starts_no_task(self):
        sim, net, procs = make_world(1)
        p = procs[0]
        blocked = [True]
        p.can_start_task = lambda: not blocked[0]
        ran = []
        p.queue_task(1.0, on_complete=lambda: ran.append(1))
        sim.run()
        assert ran == []

        def unblock():
            blocked[0] = False
            p.notify_work()

        sim.schedule(1.0, unblock)
        sim.run()
        assert ran == [1]


class TestPauseResume:
    def test_pause_extends_completion(self):
        sim, net, procs = make_world(1)
        p = procs[0]
        ends = []
        p.queue_task(2.0, on_complete=lambda: ends.append(sim.now))
        sim.schedule(1.0, p.pause_task)
        sim.schedule(4.0, p.resume_task)
        sim.run()
        # 1s ran, paused 3s, 1s remaining -> completes at t=5.
        assert ends == [pytest.approx(5.0)]

    def test_nested_pause_requires_matching_resumes(self):
        sim, net, procs = make_world(1)
        p = procs[0]
        ends = []
        p.queue_task(2.0, on_complete=lambda: ends.append(sim.now))

        def pause_twice():
            p.pause_task()
            p.pause_task()

        sim.schedule(1.0, pause_twice)
        sim.schedule(2.0, p.resume_task)
        sim.schedule(3.0, p.resume_task)
        sim.run()
        assert ends == [pytest.approx(4.0)]

    def test_resume_without_pause_raises(self):
        sim, net, procs = make_world(1)
        p = procs[0]
        p.queue_task(2.0)
        sim.schedule(1.0, lambda: pytest.raises(ProtocolError, p.resume_task))
        sim.run()

    def test_pause_with_no_task_returns_false(self):
        sim, net, procs = make_world(1)
        assert procs[0].pause_task() is False


class TestThreadedVariant:
    def test_state_treated_during_compute(self):
        cfg = NetworkConfig(latency=1e-6)
        sim, net, procs = make_world(2, config=cfg, threaded=True)
        p1 = procs[1]
        treated_at = []
        p1.handle_state = lambda env: treated_at.append(sim.now)
        p1.queue_task(1.0)
        sim.schedule(0.3, lambda: net.send(0, 1, Channel.STATE, Note(),
                                           charge_sender=False))
        sim.run()
        # Treated at the next 50 µs poll boundary after arrival, mid-task.
        assert treated_at and treated_at[0] < 0.31

    def test_nonthreaded_state_waits(self):
        cfg = NetworkConfig(latency=1e-6)
        sim, net, procs = make_world(2, config=cfg, threaded=False)
        p1 = procs[1]
        treated_at = []
        p1.handle_state = lambda env: treated_at.append(sim.now)
        p1.queue_task(1.0)
        sim.schedule(0.3, lambda: net.send(0, 1, Channel.STATE, Note(),
                                           charge_sender=False))
        sim.run()
        assert treated_at[0] >= 1.0

    def test_threaded_handler_cost_extends_task(self):
        cfg = NetworkConfig(latency=1e-6, recv_overhead=1e-2)
        sim, net, procs = make_world(2, config=cfg, threaded=True)
        p1 = procs[1]
        ends = []
        p1.handle_state = lambda env: None
        p1.queue_task(1.0, on_complete=lambda: ends.append(sim.now))
        sim.schedule(0.3, lambda: net.send(0, 1, Channel.STATE, Note(),
                                           charge_sender=False))
        sim.run()
        assert ends[0] == pytest.approx(1.01, abs=1e-3)

    def test_threaded_pause_from_handler(self):
        cfg = NetworkConfig(latency=1e-6)
        sim, net, procs = make_world(2, config=cfg, threaded=True)
        p1 = procs[1]
        ends = []

        def on_state(env):
            p1.pause_task()
            sim.schedule(1.0, p1.resume_task)

        p1.handle_state = on_state
        p1.queue_task(1.0, on_complete=lambda: ends.append(sim.now))
        sim.schedule(0.5, lambda: net.send(0, 1, Channel.STATE, Note(),
                                           charge_sender=False))
        sim.run()
        assert ends[0] == pytest.approx(2.0, abs=1e-3)


class TestHalt:
    def test_halted_process_ignores_messages_and_tasks(self):
        sim, net, procs = make_world(2)
        p1 = procs[1]
        p1.queue_task(1.0)
        p1.halt()
        net.send(0, 1, Channel.DATA, Note(), charge_sender=False)
        sim.run()
        assert p1.stats_tasks_run == 0
        assert p1.stats_msgs_treated == 0
