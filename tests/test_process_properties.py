"""Property-based tests of the process model's accounting.

Hypothesis drives random mixes of tasks and messages through a process and
checks the conservation laws of the execution model: busy time equals the
sum of task durations plus message-treatment costs; tasks never overlap;
every queued message is eventually treated exactly once.
"""

from typing import List

import pytest
from hypothesis import given, settings, strategies as st

from repro.simcore import Channel, NetworkConfig
from repro.simcore.network import Payload

from helpers import make_world


class Note(Payload):
    TYPE = "note"

    def nbytes(self):
        return 64


task_durations = st.lists(st.floats(1e-6, 1e-2), min_size=0, max_size=10)
message_times = st.lists(st.floats(0, 5e-2), min_size=0, max_size=15)


class TestAccountingProperties:
    @given(durations=task_durations, msg_times=message_times)
    @settings(max_examples=60, deadline=None)
    def test_busy_time_conserved(self, durations, msg_times):
        cfg = NetworkConfig(latency=1e-6, recv_overhead=1e-5,
                            send_overhead=0.0, recv_per_byte=0.0)
        sim, net, procs = make_world(2, config=cfg)
        target = procs[1]
        treated = []
        target.handle_data = lambda env: treated.append(sim.now)
        for d in durations:
            target.queue_task(d)
        for t in msg_times:
            sim.schedule(t, lambda: net.send(0, 1, Channel.DATA, Note(),
                                             charge_sender=False))
        sim.run()
        assert target.stats_tasks_run == len(durations)
        assert len(treated) == len(msg_times)
        expected_busy = sum(durations) + len(msg_times) * 1e-5
        assert target.stats_busy_time == pytest.approx(expected_busy, rel=1e-9)

    @given(durations=task_durations)
    @settings(max_examples=40, deadline=None)
    def test_tasks_never_overlap(self, durations):
        sim, net, procs = make_world(1)
        p = procs[0]
        intervals: List[tuple] = []
        for d in durations:
            start_holder = []
            p.queue_task(
                d,
                on_start=lambda s=start_holder: s.append(sim.now),
                on_complete=lambda s=start_holder, d=d: intervals.append(
                    (s[0], sim.now)
                ),
            )
        sim.run()
        intervals.sort()
        for (a0, a1), (b0, b1) in zip(intervals, intervals[1:]):
            assert a1 <= b0 + 1e-12

    @given(
        durations=task_durations,
        msg_times=message_times,
        threaded=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_messages_treated_exactly_once(self, durations, msg_times,
                                               threaded):
        cfg = NetworkConfig(latency=1e-6)
        sim, net, procs = make_world(2, config=cfg, threaded=threaded)
        target = procs[1]
        treated = []
        target.handle_state = lambda env: treated.append(env.seq)
        for d in durations:
            target.queue_task(d)
        for t in msg_times:
            sim.schedule(t, lambda: net.send(0, 1, Channel.STATE, Note(),
                                             charge_sender=False))
        sim.run()
        assert len(treated) == len(msg_times)
        assert len(set(treated)) == len(treated)

    @given(durations=st.lists(st.floats(1e-4, 1e-2), min_size=1, max_size=6),
           pause_at=st.floats(1e-5, 5e-3))
    @settings(max_examples=40, deadline=None)
    def test_pause_resume_preserves_total_work(self, durations, pause_at):
        sim, net, procs = make_world(1)
        p = procs[0]
        done = []
        for d in durations:
            p.queue_task(d, on_complete=lambda: done.append(sim.now))

        def maybe_pause():
            if p.pause_task():
                sim.schedule(7e-3, p.resume_task)

        sim.schedule(pause_at, maybe_pause)
        sim.run()
        assert len(done) == len(durations)
        # completion of everything >= total work (pause only adds delay)
        assert done[-1] >= sum(durations) - 1e-12


class TestFIFOProperty:
    @given(sizes=st.lists(st.integers(1, 100_000), min_size=2, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_per_link_delivery_order_preserved(self, sizes):
        class Sized(Payload):
            TYPE = "sized"

            def __init__(self, n, tag):
                self.n = n
                self.tag = tag

            def nbytes(self):
                return self.n

        cfg = NetworkConfig(latency=1e-5, bandwidth=1e6, send_overhead=0.0)
        sim, net, procs = make_world(2, config=cfg)
        got = []
        procs[1].handle_data = lambda env: got.append(env.payload.tag)
        for i, n in enumerate(sizes):
            net.send(0, 1, Channel.DATA, Sized(n, i), charge_sender=False)
        sim.run()
        assert got == list(range(len(sizes)))
