"""Tests for the time-driven (periodic broadcast) mechanism."""

import pytest

from repro import run_factorization
from repro.matrices import generators as gen
from repro.mechanisms import (
    Load,
    MechanismConfig,
    PeriodicMechanism,
    create_mechanism,
)
from repro.solver.driver import SolverConfig
from repro.symbolic import analyze_matrix

from helpers import make_world


def periodic_world(nprocs, period=1e-3):
    cfg = MechanismConfig(periodic_period=period)
    return make_world(nprocs, lambda: PeriodicMechanism(cfg))


class TestPeriodicBroadcast:
    def test_registered(self):
        assert isinstance(create_mechanism("periodic"), PeriodicMechanism)

    def test_no_broadcast_when_clean(self):
        sim, net, procs = periodic_world(3)
        for p in procs:
            p.mechanism.initialize_view([Load.ZERO] * 3)
        sim.run(until=0.01)
        assert net.stats.by_type.get("update_abs", 0) == 0

    def test_dirty_load_broadcast_on_next_tick(self):
        sim, net, procs = periodic_world(3, period=1e-3)
        for p in procs:
            p.mechanism.initialize_view([Load.ZERO] * 3)
        sim.schedule(1e-4, lambda: procs[0].mechanism.on_local_change(Load(5.0, 0.0)))
        sim.run(until=2.5e-3)
        assert net.stats.by_type["update_abs"] == 2  # one tick, two receivers
        assert procs[1].mechanism.view.get(0).workload == 5.0

    def test_burst_costs_one_message_per_period(self):
        sim, net, procs = periodic_world(2, period=1e-3)
        for p in procs:
            p.mechanism.initialize_view([Load.ZERO] * 2)

        def burst():
            for _ in range(100):
                procs[0].mechanism.on_local_change(Load(1.0, 0.0))

        sim.schedule(1e-4, burst)
        sim.run(until=2.5e-3)
        # 100 variations, a single absolute broadcast
        assert net.stats.by_type["update_abs"] == 1
        assert procs[1].mechanism.view.get(0).workload == 100.0

    def test_shutdown_stops_timer(self):
        sim, net, procs = periodic_world(2)
        for p in procs:
            p.mechanism.initialize_view([Load.ZERO] * 2)
        for p in procs:
            p.mechanism.shutdown()
        assert sim.run(until=1.0) in ("drained", "horizon")
        assert net.stats.sent_total == 0

    def test_no_reservation_broadcast(self):
        sim, net, procs = periodic_world(3)
        for p in procs:
            p.mechanism.initialize_view([Load.ZERO] * 3)
        procs[0].mechanism.record_decision({1: Load(10.0, 0.0)})
        procs[0].mechanism.decision_complete()
        sim.run(until=5e-3)
        assert net.stats.by_type.get("master_to_all", 0) == 0


class TestPeriodicInSolver:
    @pytest.fixture(scope="class")
    def tree(self):
        return analyze_matrix(gen.grid_laplacian((12, 12, 4)), name="pergrid")

    def test_factorization_completes_and_drains(self, tree):
        cfg = SolverConfig(periodic_period=5e-4)
        r = run_factorization(tree, 8, mechanism="periodic", config=cfg)
        assert r.factorization_time > 0
        assert r.total_factor_entries == pytest.approx(tree.total_factor_entries)

    def test_shorter_period_more_messages(self, tree):
        fast = run_factorization(tree, 8, mechanism="periodic",
                                 config=SolverConfig(periodic_period=1e-4))
        slow = run_factorization(tree, 8, mechanism="periodic",
                                 config=SolverConfig(periodic_period=2e-3))
        assert fast.state_messages > slow.state_messages

    def test_validates(self, tree):
        from repro.solver import validate_result

        r = run_factorization(tree, 8, mechanism="periodic")
        assert validate_result(r, tree).ok
