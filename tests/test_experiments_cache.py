"""Cache-key behavior of :class:`repro.experiments.runner.ExperimentRunner`.

The runner dedups simulated runs by configuration.  Historically the key
leaned on a caller-provided ``config_tag`` that carried every non-default
knob *by convention*: a ``config=`` passed with an empty tag silently shared
a cache slot with a different config.  The key is now a deterministic hash
of the **full** :class:`SolverConfig` (:func:`repro.experiments.config_digest`),
so no knob — fault plan, resilience, network timing, thresholds — can ever
collide, and ``config_tag`` is a purely cosmetic label.
"""

from dataclasses import replace

from repro.experiments import config_digest, make_run_key
from repro.experiments.runner import ExperimentRunner
from repro.faults import FaultPlan
from repro.scheduling import ScheduleParams
from repro.simcore.network import NetworkConfig
from repro.solver.driver import SolverConfig


def _run(runner, *, config=None, config_tag=""):
    return runner.run(
        "TWOTONE", 4, "naive", "memory", config=config, config_tag=config_tag
    )


class TestConfigDigest:
    def test_stable_across_calls(self):
        assert config_digest(SolverConfig()) == config_digest(SolverConfig())

    def test_equal_configs_share_a_digest(self):
        a = SolverConfig(threshold_frac=0.2)
        b = SolverConfig(threshold_frac=0.2)
        assert config_digest(a) == config_digest(b)

    def test_every_knob_discriminates(self):
        base = SolverConfig()
        variants = [
            SolverConfig(threshold_frac=0.2),
            SolverConfig(seed=1),
            SolverConfig(threaded=True),
            SolverConfig(no_more_master=False),
            SolverConfig(network=NetworkConfig.high_latency()),
            SolverConfig(schedule=ScheduleParams(kmin_rows=16)),
            SolverConfig(resilience=True),
            SolverConfig(fault_plan=FaultPlan.uniform_loss(0.05)),
        ]
        digests = [config_digest(c) for c in [base] + variants]
        assert len(set(digests)) == len(digests)

    def test_different_plans_get_different_digests(self):
        a = SolverConfig(fault_plan=FaultPlan.uniform_loss(0.05))
        b = SolverConfig(fault_plan=FaultPlan.uniform_loss(0.10))
        assert config_digest(a) != config_digest(b)

    def test_empty_plan_normalized_to_no_plan(self):
        """A present-but-empty plan runs the exact same simulation as no
        plan at all, so it must not fragment the cache."""
        assert config_digest(SolverConfig(fault_plan=FaultPlan())) == \
            config_digest(SolverConfig())

    def test_make_run_key_folds_threaded_into_config(self):
        cfg = SolverConfig()
        k = make_run_key("TWOTONE", 4, "naive", "memory", True, cfg)
        same = make_run_key(
            "TWOTONE", 4, "naive", "memory", True, replace(cfg, threaded=True)
        )
        assert k == same


class TestRunCache:
    def test_identical_runs_hit_the_cache(self):
        runner = ExperimentRunner()
        a = _run(runner)
        b = _run(runner)
        assert a is b
        assert runner.runs_executed == 1
        assert runner.runs_simulated == 1

    def test_fault_plan_is_a_cache_miss(self):
        runner = ExperimentRunner()
        plain = _run(runner)
        lossy = _run(
            runner,
            config=SolverConfig(
                fault_plan=FaultPlan.uniform_loss(0.05), resilience=True
            ),
        )
        assert plain is not lossy
        assert runner.runs_executed == 2
        # and the lossy config caches under its own slot
        again = _run(
            runner,
            config=SolverConfig(
                fault_plan=FaultPlan.uniform_loss(0.05), resilience=True
            ),
        )
        assert again is lossy
        assert runner.runs_executed == 2

    def test_resilience_alone_is_a_cache_miss(self):
        runner = ExperimentRunner()
        plain = _run(runner)
        hardened = _run(runner, config=SolverConfig(resilience=True))
        assert plain is not hardened
        assert runner.runs_executed == 2

    def test_loss_rates_do_not_collide(self):
        runner = ExperimentRunner()
        base = SolverConfig(resilience=True)
        r1 = _run(runner, config=replace(
            base, fault_plan=FaultPlan.uniform_loss(0.02)
        ))
        r2 = _run(runner, config=replace(
            base, fault_plan=FaultPlan.uniform_loss(0.05)
        ))
        assert r1 is not r2
        assert runner.runs_executed == 2

    def test_config_differs_even_with_empty_tags(self):
        """The historical fragility: two different configs passed with empty
        (or equal) tags must NOT share a slot."""
        runner = ExperimentRunner()
        a = _run(runner, config=SolverConfig(threshold_frac=0.10))
        b = _run(runner, config=SolverConfig(threshold_frac=0.30))
        assert a is not b
        assert runner.runs_executed == 2

    def test_config_tag_is_only_a_label(self):
        """Same full config under two display labels = one simulation."""
        runner = ExperimentRunner()
        a = _run(runner, config_tag="variant-a")
        b = _run(runner, config_tag="variant-b")
        assert a is b
        assert runner.runs_executed == 1

    def test_empty_plan_shares_the_fault_free_slot(self):
        """A present-but-empty plan must not fragment the cache: it runs
        the exact same simulation as no plan at all."""
        runner = ExperimentRunner()
        plain = _run(runner)
        empty = _run(runner, config=SolverConfig(fault_plan=FaultPlan()))
        assert plain is empty
        assert runner.runs_executed == 1
