"""Cache-key behavior of :class:`repro.experiments.runner.ExperimentRunner`.

The runner dedups simulated runs by configuration; the fault-injection
subsystem added two knobs (``fault_plan``, ``resilience``) that must be part
of the key, or a robustness sweep could poison the fault-free tables with a
lossy cached run (and vice versa).
"""

from dataclasses import replace

from repro.experiments.runner import ExperimentRunner
from repro.faults import FaultPlan
from repro.solver.driver import SolverConfig


def _run(runner, *, config=None, config_tag=""):
    return runner.run(
        "TWOTONE", 4, "naive", "memory", config=config, config_tag=config_tag
    )


class TestEffectiveTag:
    def test_plain_config_keeps_caller_tag(self):
        cfg = SolverConfig()
        assert ExperimentRunner._effective_tag(cfg, "") == ""
        assert ExperimentRunner._effective_tag(cfg, "thr=2") == "thr=2"

    def test_empty_plan_is_invisible(self):
        cfg = SolverConfig(fault_plan=FaultPlan())
        assert ExperimentRunner._effective_tag(cfg, "") == ""

    def test_plan_and_resilience_are_folded_in(self):
        plan = FaultPlan.uniform_loss(0.05)
        cfg = SolverConfig(fault_plan=plan, resilience=True)
        tag = ExperimentRunner._effective_tag(cfg, "thr=2")
        assert tag == f"thr=2+{plan.tag()}+resilience"

    def test_different_plans_get_different_tags(self):
        a = SolverConfig(fault_plan=FaultPlan.uniform_loss(0.05))
        b = SolverConfig(fault_plan=FaultPlan.uniform_loss(0.10))
        assert (ExperimentRunner._effective_tag(a, "")
                != ExperimentRunner._effective_tag(b, ""))


class TestRunCache:
    def test_identical_runs_hit_the_cache(self):
        runner = ExperimentRunner()
        a = _run(runner)
        b = _run(runner)
        assert a is b
        assert runner.runs_executed == 1

    def test_fault_plan_is_a_cache_miss(self):
        runner = ExperimentRunner()
        plain = _run(runner)
        lossy = _run(
            runner,
            config=SolverConfig(
                fault_plan=FaultPlan.uniform_loss(0.05), resilience=True
            ),
        )
        assert plain is not lossy
        assert runner.runs_executed == 2
        # and the lossy config caches under its own slot
        again = _run(
            runner,
            config=SolverConfig(
                fault_plan=FaultPlan.uniform_loss(0.05), resilience=True
            ),
        )
        assert again is lossy
        assert runner.runs_executed == 2

    def test_resilience_alone_is_a_cache_miss(self):
        runner = ExperimentRunner()
        plain = _run(runner)
        hardened = _run(runner, config=SolverConfig(resilience=True))
        assert plain is not hardened
        assert runner.runs_executed == 2

    def test_loss_rates_do_not_collide(self):
        runner = ExperimentRunner()
        base = SolverConfig(resilience=True)
        r1 = _run(runner, config=replace(
            base, fault_plan=FaultPlan.uniform_loss(0.02)
        ))
        r2 = _run(runner, config=replace(
            base, fault_plan=FaultPlan.uniform_loss(0.05)
        ))
        assert r1 is not r2
        assert runner.runs_executed == 2

    def test_config_tag_still_discriminates(self):
        runner = ExperimentRunner()
        a = _run(runner, config_tag="variant-a")
        b = _run(runner, config_tag="variant-b")
        assert a is not b
        assert runner.runs_executed == 2

    def test_empty_plan_shares_the_fault_free_slot(self):
        """A present-but-empty plan must not fragment the cache: it runs
        the exact same simulation as no plan at all."""
        runner = ExperimentRunner()
        plain = _run(runner)
        empty = _run(runner, config=SolverConfig(fault_plan=FaultPlan()))
        assert plain is empty
        assert runner.runs_executed == 1
