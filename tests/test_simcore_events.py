"""Unit tests for the event queue: ordering, ties, cancellation."""

import pytest

from repro.simcore.events import (
    EventQueue,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
)


def drain(q):
    out = []
    while True:
        ev = q.pop()
        if ev is None:
            return out
        out.append(ev)


class TestEventQueueOrdering:
    def test_pops_in_time_order(self):
        q = EventQueue()
        for t in [3.0, 1.0, 2.0]:
            q.push(t, lambda: None, label=f"t{t}")
        assert [e.time for e in drain(q)] == [1.0, 2.0, 3.0]

    def test_same_time_ordered_by_priority(self):
        q = EventQueue()
        q.push(1.0, lambda: None, priority=PRIORITY_LOW, label="low")
        q.push(1.0, lambda: None, priority=PRIORITY_HIGH, label="high")
        q.push(1.0, lambda: None, priority=PRIORITY_NORMAL, label="normal")
        assert [e.label for e in drain(q)] == ["high", "normal", "low"]

    def test_same_time_same_priority_fifo(self):
        q = EventQueue()
        for i in range(5):
            q.push(1.0, lambda: None, label=str(i))
        assert [e.label for e in drain(q)] == ["0", "1", "2", "3", "4"]

    def test_nan_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(float("nan"), lambda: None)


class TestEventQueueCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None, label="a")
        q.push(2.0, lambda: None, label="b")
        q.cancel(ev)
        assert [e.label for e in drain(q)] == ["b"]

    def test_cancel_updates_len(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        assert len(q) == 1
        q.cancel(ev)
        assert len(q) == 0
        assert not q

    def test_double_cancel_is_idempotent(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.cancel(ev)
        q.cancel(ev)
        assert len(q) == 0

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        q.cancel(ev)
        assert q.peek_time() == 5.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_clear(self):
        q = EventQueue()
        q.push(1.0, lambda: None)
        q.clear()
        assert q.pop() is None
