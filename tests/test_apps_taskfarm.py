"""Tests for the task-farm application (mechanism generality)."""

import pytest

from repro.apps import TaskFarmParams, run_taskfarm

FAST = TaskFarmParams(
    initial_tasks_per_proc=4,
    mean_task_seconds=1e-3,
    spawn_probability=0.3,
    max_generation=2,
    offload_threshold=4,
    offload_batch=2,
)


class TestCompletion:
    @pytest.mark.parametrize("mechanism", [
        "naive", "increments", "snapshot", "oracle",
    ])
    def test_all_mechanisms_complete(self, mechanism):
        r = run_taskfarm(6, mechanism=mechanism, params=FAST, seed=1)
        assert r.makespan > 0
        assert r.tasks_executed >= 6 * 4  # at least the initial batch

    def test_partial_snapshot_completes(self):
        r = run_taskfarm(8, mechanism="partial_snapshot", params=FAST, seed=1)
        assert r.makespan > 0

    def test_periodic_completes_and_drains(self):
        r = run_taskfarm(6, mechanism="periodic", params=FAST, seed=1)
        assert r.makespan > 0

    def test_single_process(self):
        params = TaskFarmParams(initial_tasks_per_proc=3,
                                offload_threshold=10**9)
        r = run_taskfarm(1, mechanism="increments", params=params)
        assert r.tasks_migrated == 0
        assert r.offload_decisions == 0


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run_taskfarm(6, "increments", params=FAST, seed=5)
        b = run_taskfarm(6, "increments", params=FAST, seed=5)
        assert a.makespan == b.makespan
        assert a.tasks_executed == b.tasks_executed
        assert a.state_messages == b.state_messages

    def test_different_seed_different_workload(self):
        a = run_taskfarm(6, "increments", params=FAST, seed=1)
        b = run_taskfarm(6, "increments", params=FAST, seed=2)
        assert (a.tasks_executed != b.tasks_executed
                or a.makespan != b.makespan)


class TestOffloadingBehaviour:
    def test_offloading_happens_under_skew(self):
        r = run_taskfarm(8, "increments", params=FAST, seed=1)
        # rank 0 starts with a double batch: someone must offload
        assert r.offload_decisions > 0
        assert r.tasks_migrated > 0

    def test_hop_limit_bounds_migrations(self):
        r = run_taskfarm(8, "increments", params=FAST, seed=1)
        # every task migrates at most max_hops times
        assert r.tasks_migrated <= r.tasks_executed * FAST.max_hops

    def test_offloading_improves_balance(self):
        # Deterministic skew: no spawning, rank 0 holds a double batch.
        # Large batches average out the exponential task-size noise so the
        # 2x skew on rank 0 dominates the makespan.
        base = dict(initial_tasks_per_proc=40, mean_task_seconds=1e-3,
                    spawn_probability=0.0, offload_batch=6, max_hops=1)
        no_offload = TaskFarmParams(offload_threshold=10**9, **base)
        with_offload = TaskFarmParams(offload_threshold=44, **base)
        skewed = run_taskfarm(4, "increments", params=no_offload, seed=4)
        balanced = run_taskfarm(4, "increments", params=with_offload, seed=4)
        assert balanced.tasks_migrated > 0
        assert balanced.makespan < skewed.makespan
        assert balanced.imbalance < skewed.imbalance

    def test_imbalance_metric(self):
        r = run_taskfarm(8, "increments", params=FAST, seed=1)
        assert r.imbalance >= 1.0


class TestMechanismContrast:
    """The farm's frequent tiny decisions invert the MUMPS trade-off."""

    def test_snapshot_much_slower_with_frequent_decisions(self):
        inc = run_taskfarm(8, "increments", params=FAST, seed=2)
        snp = run_taskfarm(8, "snapshot", params=FAST, seed=2)
        assert snp.makespan > inc.makespan

    def test_oracle_no_messages(self):
        r = run_taskfarm(8, "oracle", params=FAST, seed=2)
        assert r.state_messages == 0
