"""Unit tests of SolverProcess internals: CB routing, root split, RunState."""

import pytest

from repro import run_factorization
from repro.mapping import NodeType, compute_mapping
from repro.matrices import generators as gen
from repro.simcore.errors import ProtocolError
from repro.solver.driver import default_threshold
from repro.solver.process import RunState
from repro.symbolic import analyze_matrix
from repro.symbolic.tree import AssemblyTree, Front


def chain_tree(sizes):
    """Path tree: front i is the child of front i+1; sizes = (npiv, nfront)."""
    fronts = []
    n = len(sizes)
    for i, (npiv, nfront) in enumerate(sizes):
        fronts.append(Front(id=i, npiv=npiv, nfront=nfront,
                            parent=(i + 1 if i + 1 < n else -1)))
    for i in range(n - 1):
        fronts[i + 1].children.append(i)
    return AssemblyTree(fronts, name="chain")


class TestRunState:
    def test_done_fires_exactly_once_at_zero(self):
        fired = []
        rs = RunState(on_done=lambda: fired.append(1))
        rs.add_parts(2)
        rs.part_done()
        assert fired == []
        rs.part_done()
        assert fired == [1]

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            RunState().add_parts(-1)

    def test_overcompletion_rejected(self):
        rs = RunState()
        rs.add_parts(1)
        rs.part_done()
        with pytest.raises(ProtocolError):
            rs.part_done()


class TestCBRouting:
    def test_type1_parent_receives_cb_data(self):
        """Sequential parents get full CB blocks (cb_block messages)."""
        # chain of small fronts -> all sequential; 2 procs guarantees at
        # least one cross-process parent/child edge in the chain mapping.
        tree = chain_tree([(8, 24), (8, 24), (8, 20), (8, 16), (8, 8)])
        from repro.solver.driver import run_factorization as run

        r = run(tree, 2, mechanism="increments")
        assert r.messages_by_type.get("cb_block", 0) >= 0  # may be local
        assert r.factorization_time > 0

    def test_type2_parent_uses_notice_and_release(self):
        """Distributed consumers: cb_notice + release_cb, no cb_block."""
        A = gen.grid_laplacian((14, 14, 5))
        tree = analyze_matrix(A, name="cbgrid")
        r = run_factorization(tree, 8, mechanism="increments")
        mapping = compute_mapping(tree, 8)
        has_type2 = any(t is NodeType.TYPE2 for t in mapping.node_type.values())
        assert has_type2
        assert r.messages_by_type.get("cb_notice", 0) > 0
        assert r.messages_by_type.get("release_cb", 0) > 0

    def test_notice_much_smaller_than_block(self):
        from repro.solver.messages import CBBlockMsg, CBNoticeMsg

        block = CBBlockMsg(parent_front=0, child_front=1, entries=10000)
        notice = CBNoticeMsg(parent_front=0, child_front=1, entries=10000)
        assert notice.nbytes() < block.nbytes() / 100


class TestRootSplit:
    def test_parts_sum_exactly(self):
        tree = chain_tree([(8, 200), (192, 192)])
        # force a root big enough for type 3 on 4 procs
        mapping = compute_mapping(tree, 4)
        root = tree.roots[0]
        if mapping.node_type[root] is NodeType.TYPE3:
            r = run_factorization(tree, 4, mechanism="increments")
            assert r.total_factor_entries == pytest.approx(
                tree.total_factor_entries
            )

    def test_root_part_messages_sent(self):
        A = gen.grid_laplacian((12, 12, 10))
        tree = analyze_matrix(A, name="rootgrid")
        mapping = compute_mapping(tree, 8)
        n3 = sum(1 for t in mapping.node_type.values() if t is NodeType.TYPE3)
        r = run_factorization(tree, 8, mechanism="increments")
        assert r.messages_by_type.get("root_part", 0) == n3 * 7


class TestDefaultThreshold:
    def test_positive_with_type2_nodes(self):
        A = gen.grid_laplacian((14, 14, 5))
        tree = analyze_matrix(A, name="thrgrid")
        mapping = compute_mapping(tree, 8)
        thr = default_threshold(tree, mapping, frac=0.5)
        assert thr.workload > 0 and thr.memory > 0

    def test_positive_without_type2_nodes(self):
        tree = chain_tree([(4, 8), (4, 4)])
        mapping = compute_mapping(tree, 2)
        thr = default_threshold(tree, mapping)
        assert thr.workload > 0 and thr.memory > 0

    def test_scales_with_frac(self):
        A = gen.grid_laplacian((12, 12, 4))
        tree = analyze_matrix(A, name="thr2grid")
        mapping = compute_mapping(tree, 4)
        lo = default_threshold(tree, mapping, frac=0.1)
        hi = default_threshold(tree, mapping, frac=1.0)
        assert hi.workload == pytest.approx(10 * lo.workload)


class TestTraceIntegration:
    def test_task_starts_match_ends(self):
        from repro.simcore import TraceRecorder

        tree = analyze_matrix(gen.grid_laplacian((10, 10, 3)), name="trgrid")
        trace = TraceRecorder(keep_kinds={"task-start", "task-end"})
        run_factorization(tree, 4, mechanism="increments", trace=trace)
        starts = len(trace.filter(kind="task-start"))
        ends = len(trace.filter(kind="task-end"))
        assert starts == ends > 0


class TestMessageSizes:
    def test_slave_task_size_scales_with_rows(self):
        from repro.solver.messages import SlaveTaskMsg

        small = SlaveTaskMsg(front_id=0, rows=10, nfront=100)
        big = SlaveTaskMsg(front_id=0, rows=100, nfront=100)
        assert big.nbytes() > small.nbytes()
        assert small.entries == 1000

    def test_data_volume_dominated_by_payload_entries(self):
        A = gen.grid_laplacian((12, 12, 4))
        tree = analyze_matrix(A, name="szgrid")
        r = run_factorization(tree, 4, mechanism="increments")
        data_bytes = sum(
            v for k, v in r.bytes_by_type.items()
            if k in ("slave_task", "cb_block", "root_part")
        )
        control_bytes = sum(
            v for k, v in r.bytes_by_type.items()
            if k in ("update", "master_to_all", "cb_notice", "release_cb")
        )
        assert data_bytes > control_bytes


class TestSingleProcessDegenerate:
    def test_sequential_peak_close_to_tree_model(self):
        """nprocs=1 peak must be within the postorder stack model's ballpark.

        (Not exactly equal: the runtime keeps CBs keyed per consumer and the
        task order is depth-first over ready tasks, but for a chain both
        models coincide.)
        """
        tree = chain_tree([(8, 24), (8, 24), (8, 16), (8, 8)])
        r = run_factorization(tree, 1, mechanism="increments")
        model = tree.sequential_peak_memory()
        assert r.peak_active_memory <= model * 1.5
        assert r.peak_active_memory >= max(f.front_entries for f in tree)
