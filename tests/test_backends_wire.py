"""Unit tests for the socket backend's wire codec and framing."""

import pytest

from repro.backends import wire
from repro.mechanisms import messages as msg
from repro.mechanisms.view import Load

SAMPLES = [
    msg.UpdateAbsolute(load=Load(3.5, -2.25)),
    msg.UpdateIncrement(delta=Load(-1.0, 0.125)),
    msg.MasterToAll(assignments={1: Load(2.0, 3.0), 4: Load(0.5, 0.0)}, decision=7),
    msg.NoMoreMaster(),
    msg.StartSnp(req=3),
    msg.Snp(req=3, load=Load(9.0, 1.0)),
    msg.EndSnp(),
    msg.ResyncRequest(),
    msg.StateSync(load=Load(1.0, 2.0), upto=42),
    msg.ReservationAck(token=9),
    msg.GossipLoad(entries={0: (5, Load(1.0, 2.0)), 3: (1, Load(0.0, -4.0))}),
    msg.NeighborLoad(origin=2, load=Load(7.0, 8.0), version=11, hops=2),
    msg.TreeDelta(deltas={1: Load(0.5, 0.5), 2: Load(-0.5, 0.0)}),
    msg.TreeSummary(loads={0: Load(1.0, 1.0), 1: Load(2.0, 2.0)}),
    msg.MasterToSlave(delta=Load(4.0, 5.0), token=3, decision=2),
]


class TestPayloadCodec:
    @pytest.mark.parametrize("payload", SAMPLES, ids=lambda p: p.type_name)
    def test_round_trip(self, payload):
        back = wire.decode_payload(wire.encode_payload(payload))
        assert type(back) is type(payload)
        assert back == payload

    def test_sequenced_wraps_and_nests(self):
        inner = msg.UpdateIncrement(delta=Load(1.0, -1.0))
        seq = msg.Sequenced(seq=17, inner=inner)
        back = wire.decode_payload(wire.encode_payload(seq))
        assert isinstance(back, msg.Sequenced)
        assert back.seq == 17
        assert back.inner == inner

    def test_covers_every_payload_type(self):
        # Every Payload subclass in the messages module must have a codec —
        # a new message type without one would crash the socket backend.
        from repro.simcore.network import Payload

        declared = {
            cls.TYPE
            for cls in vars(msg).values()
            if isinstance(cls, type)
            and issubclass(cls, Payload)
            and cls is not Payload
        }
        assert declared == set(wire.wire_types())

    def test_unknown_type_rejected(self):
        with pytest.raises(wire.WireError):
            wire.decode_payload({"k": "bogus"})
        with pytest.raises(wire.WireError):
            wire.decode_payload({"no-type": 1})

    def test_malformed_fields_rejected(self):
        with pytest.raises(wire.WireError):
            wire.decode_payload({"k": "snp"})  # missing req/load
        with pytest.raises(wire.WireError):
            wire.decode_payload({"k": "update_abs", "load": [1.0]})

    def test_float_bit_exact_through_json(self):
        # The conformance suite's final-load checks rely on this.
        vals = [0.1, 1e-300, 3.141592653589793, -7.25e17]
        for v in vals:
            p = msg.UpdateAbsolute(load=Load(v, -v))
            frame = wire.encode_frame({"p": wire.encode_payload(p)})
            obj, _ = wire.decode_frame(frame)
            back = wire.decode_payload(obj["p"])
            assert back.load.workload == v
            assert back.load.memory == -v


class TestFraming:
    def test_frame_round_trip(self):
        obj = {"s": 1, "d": 2, "p": wire.encode_payload(msg.EndSnp())}
        frame = wire.encode_frame(obj)
        assert frame[0:1] == wire.FORMAT_JSON
        back, consumed = wire.decode_frame(frame)
        assert consumed == len(frame)
        assert back == {"s": 1, "d": 2, "p": {"k": "end_snp"}}

    def test_incremental_decode(self):
        frame = wire.encode_frame({"x": 1})
        for cut in range(len(frame)):
            with pytest.raises(wire.IncompleteFrame) as ei:
                wire.decode_frame(frame[:cut])
            assert ei.value.missing == (
                wire.HEADER_BYTES - cut
                if cut < wire.HEADER_BYTES
                else len(frame) - cut
            )
        # concatenated frames: decode_frame reports the exact boundary
        two = frame + wire.encode_frame({"y": 2})
        first, consumed = wire.decode_frame(two)
        assert first == {"x": 1}
        second, _ = wire.decode_frame(two[consumed:])
        assert second == {"y": 2}

    def test_unknown_marker_rejected(self):
        with pytest.raises(wire.WireError):
            wire.decode_body(b"Z", b"{}")

    def test_oversized_length_rejected(self):
        bad = b"J" + (wire.MAX_FRAME_BYTES + 1).to_bytes(4, "big") + b""
        with pytest.raises(wire.WireError):
            wire.decode_frame(bad)

    def test_non_mapping_body_rejected(self):
        frame = b"J" + len(b"[1,2]").to_bytes(4, "big") + b"[1,2]"
        with pytest.raises(wire.WireError):
            wire.decode_frame(frame)

    def test_msgpack_gated(self):
        if wire.HAVE_MSGPACK:
            frame = wire.encode_frame({"a": 1}, use_msgpack=True)
            assert frame[0:1] == wire.FORMAT_MSGPACK
            assert wire.decode_frame(frame)[0] == {"a": 1}
        else:
            with pytest.raises(wire.WireError):
                wire.encode_frame({"a": 1}, use_msgpack=True)
