"""Causality sanitizer: clean runs are silent and identical, leaks are caught.

Also covers the dispatch-layer hardening the sanitizer builds on: unknown
message types raise :class:`UnknownMessageError` instead of being silently
ignored, and handler tables are validated at class-creation time.
"""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import (
    CausalitySanitizer,
    MonitoredLoadView,
    SanitizerConfig,
)
from repro.faults import FaultPlan, StateLeakFault
from repro.matrices import collection
from repro.mechanisms import Load, MechanismConfig, NaiveMechanism
from repro.mechanisms.base import Mechanism
from repro.mechanisms.messages import StartSnp, UpdateAbsolute
from repro.mechanisms.view import LoadView
from repro.simcore.errors import CausalityViolation, UnknownMessageError
from repro.simcore.network import Channel
from repro.solver.driver import SolverConfig, run_factorization

from helpers import make_world


def run(mechanism, *, sanitize=False, fault_plan=None, nprocs=4, seed=3):
    return run_factorization(
        collection.get("TWOTONE"),
        nprocs,
        mechanism,
        "workload",
        SolverConfig(
            seed=seed,
            sanitizer=SanitizerConfig() if sanitize else None,
            fault_plan=fault_plan,
        ),
    )


class TestDispatchHardening:
    def test_unknown_message_raises(self):
        """A payload without a HANDLERS entry is a protocol error, loudly."""
        factory = lambda: NaiveMechanism(MechanismConfig())
        sim, net, procs = make_world(2, factory)
        # The naive mechanism has no snapshot handlers.
        net.send(0, 1, Channel.STATE, StartSnp(req=1))
        with pytest.raises(UnknownMessageError) as exc:
            sim.run()
        assert exc.value.rank == 1
        assert exc.value.type_name == "start_snp"

    def test_bad_handler_table_fails_at_class_creation(self):
        with pytest.raises(TypeError, match="_no_such_method"):

            class Oops(Mechanism):
                HANDLERS = {UpdateAbsolute: "_no_such_method"}


class TestCleanRuns:
    @pytest.mark.parametrize("mechanism", ["increments", "snapshot"])
    def test_sanitized_run_is_clean_and_identical(self, mechanism):
        base = run(mechanism)
        san = run(mechanism, sanitize=True)
        assert san.sanitizer_stats is not None
        assert san.sanitizer_stats.get("violations", 0) == 0
        assert san.sanitizer_stats["messages_tracked"] > 0
        assert san.sanitizer_stats["view_writes"] > 0
        # The sanitizer observes; it must never perturb the run.
        assert san.factorization_time == base.factorization_time
        assert san.state_messages == base.state_messages
        assert san.messages_by_type == base.messages_by_type
        assert (san.peak_active == base.peak_active).all()
        assert base.sanitizer_stats is None

    def test_snapshot_cuts_are_checked(self):
        san = run("snapshot", sanitize=True, nprocs=8)
        assert san.sanitizer_stats["snapshots_checked"] > 0
        assert san.sanitizer_stats["answers_recorded"] > 0

    def test_reservations_are_tracked(self):
        san = run("increments", sanitize=True, nprocs=8)
        assert san.sanitizer_stats["reservations_tracked"] > 0

    def test_stats_only_exported_when_sanitized(self):
        assert "sanitizer_stats" not in run("increments").to_dict()
        assert "sanitizer_stats" in run("increments", sanitize=True).to_dict()


class TestViolations:
    def test_state_leak_raises_view_provenance(self):
        """A messageless cross-process write is caught with a usable trace."""
        plan = FaultPlan(
            leaks=(StateLeakFault(rank=2, entry_rank=0, time=1e-3,
                                  workload=1e9),)
        )
        with pytest.raises(CausalityViolation) as exc:
            run("increments", sanitize=True, fault_plan=plan)
        err = exc.value
        assert err.invariant == "view-provenance"
        assert "P2" in err.detail and "P0" in err.detail
        # The replayable excerpt ends with the offending write.
        assert err.trace
        assert "WRITE P2.view[0]" in err.trace[-1]
        assert "event trace" in str(err)

    def test_state_leak_is_silent_without_sanitizer(self):
        plan = FaultPlan(
            leaks=(StateLeakFault(rank=2, entry_rank=0, time=1e-3,
                                  workload=1e9),)
        )
        result = run("increments", fault_plan=plan)
        assert result.fault_stats["leaks"] == 1

    def test_leak_check_can_be_disabled(self):
        plan = FaultPlan(
            leaks=(StateLeakFault(rank=2, entry_rank=0, time=1e-3,
                                  workload=1e9),)
        )
        cfg = SolverConfig(
            seed=3,
            sanitizer=SanitizerConfig(check_view_provenance=False),
            fault_plan=plan,
        )
        result = run_factorization(
            collection.get("TWOTONE"), 4, "increments", "workload", cfg
        )
        assert result.sanitizer_stats.get("violations", 0) == 0

    def test_reservation_replay_raises(self):
        san = CausalitySanitizer()
        san.reservation_applied(applier=1, master=0, decision=7)
        with pytest.raises(CausalityViolation) as exc:
            san.reservation_applied(applier=1, master=0, decision=7)
        assert exc.value.invariant == "reservation-replay"
        # Distinct deciders/decisions never collide.
        san.reservation_applied(applier=1, master=0, decision=8)
        san.reservation_applied(applier=2, master=0, decision=7)
        san.reservation_applied(applier=1, master=3, decision=7)

    def test_inconsistent_cut_raises(self):
        """Synthetic two-process gather where a post-cut message crossed."""
        san = CausalitySanitizer()
        san.nprocs = 2
        san._vc = [[0, 0], [0, 0]]
        # Member P1 answers initiator P0's request 1 at clock (0, 1)...
        san._vc[1] = [0, 1]
        san.snapshot_answer(src=1, initiator=0, req=1)
        # ...then P1 keeps working and a later message reaches P0 before
        # the gather completes: P0's clock now reflects 3 events of P1.
        san._vc[0] = [5, 3]
        with pytest.raises(CausalityViolation) as exc:
            san.gather_complete(initiator=0, req=1, members=[1])
        assert exc.value.invariant == "inconsistent-cut"

    def test_consistent_cut_passes(self):
        san = CausalitySanitizer()
        san.nprocs = 2
        san._vc = [[0, 0], [0, 1]]
        san.snapshot_answer(src=1, initiator=0, req=1)
        san._vc[0] = [5, 1]  # exactly the answer, nothing later
        san.gather_complete(initiator=0, req=1, members=[1])
        assert san.stats["snapshots_checked"] == 1


class TestMonitoredView:
    def test_copy_returns_plain_view(self):
        """Decision-time snapshots must escape the provenance check."""
        san = CausalitySanitizer()
        view = MonitoredLoadView(3, san, owner=0)
        snap = view.copy()
        assert type(snap) is LoadView
        # Writing the *copy* from anywhere is legal.
        snap.set(1, Load(1.0, 1.0))

    def test_wrap_preserves_contents(self):
        san = CausalitySanitizer()
        plain = LoadView(2)
        plain.set(1, Load(3.0, 4.0))
        wrapped = MonitoredLoadView.wrap(plain, san, owner=0)
        assert wrapped.get(1).workload == 3.0
        assert wrapped.get(1).memory == 4.0


class TestCLISanitize:
    def test_sanitize_flag_smoke(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table3", "--fast", "--sanitize"]) == 0
        capsys.readouterr()
