"""Unit tests for the synthetic matrix generators and the problem registry."""

import numpy as np
import pytest

from repro.matrices import collection, generators as gen


class TestGridGenerators:
    def test_laplacian_2d_shape_and_symmetry(self):
        A = gen.grid_laplacian((5, 7))
        assert A.shape == (35, 35)
        assert (abs(A - A.T)).nnz == 0

    def test_laplacian_2d_is_5_point(self):
        A = gen.grid_laplacian((10, 10))
        inner_row = A[45].toarray().ravel()
        assert np.count_nonzero(inner_row) == 5

    def test_laplacian_3d_is_7_point(self):
        A = gen.grid_laplacian((5, 5, 5))
        center = 2 * 25 + 2 * 5 + 2
        assert np.count_nonzero(A[center].toarray()) == 7

    def test_27pt_stencil(self):
        A = gen.grid_stencil_27pt((5, 5, 5))
        center = 2 * 25 + 2 * 5 + 2
        assert np.count_nonzero(A[center].toarray()) == 27

    def test_9pt_stencil(self):
        A = gen.grid_stencil_9pt((6, 6))
        center = 2 * 6 + 2
        assert np.count_nonzero(A[center].toarray()) == 9

    def test_vector_field_expands_dofs(self):
        base = gen.grid_laplacian((4, 4))
        A = gen.vector_field(base, 3)
        assert A.shape == (48, 48)
        assert A.nnz == base.nnz * 9

    def test_anisotropic_grid_connected(self):
        from scipy.sparse.csgraph import connected_components

        A = gen.anisotropic_grid((5, 5, 4), stretch=2)
        ncomp, _ = connected_components(A, directed=False)
        assert ncomp == 1


class TestIrregularGenerators:
    def test_lp_normal_equations_symmetric(self):
        A = gen.lp_normal_equations(200, 800, 0.01)
        assert A.shape == (200, 200)
        assert (abs(A - A.T)).nnz == 0

    def test_lp_has_heavy_rows(self):
        A = gen.lp_normal_equations(300, 1000, 0.005, heavy_fraction=0.01,
                                    heavy_density=0.2)
        row_nnz = np.diff(A.tocsr().indptr)
        assert row_nnz.max() > 5 * np.median(row_nnz)

    def test_circuit_like_unsymmetric_pattern(self):
        A = gen.circuit_like(500)
        pattern = A.copy()
        pattern.data[:] = 1
        assert (abs(pattern - pattern.T)).nnz > 0

    def test_circuit_like_connected(self):
        from scipy.sparse.csgraph import connected_components

        A = gen.circuit_like(500)
        ncomp, _ = connected_components(A, directed=False)
        assert ncomp == 1

    def test_circuit_deterministic_with_rng(self):
        a = gen.circuit_like(300, rng=np.random.default_rng(7))
        b = gen.circuit_like(300, rng=np.random.default_rng(7))
        assert (abs(a - b)).nnz == 0

    def test_pattern_stats(self):
        st = gen.pattern_stats(gen.grid_laplacian((4, 4)))
        assert st == {"order": 16, "nnz": 64, "sym": True}


class TestCollection:
    def test_all_problems_build(self):
        for name in collection.ALL_NAMES:
            p = collection.get(name)
            assert p.order > 0 and p.nnz > 0
            assert p.matrix.shape == (p.order, p.order)

    def test_sym_flags_match_matrix(self):
        for name in ["BMWCRA_1", "GUPTA3", "MSDOOR", "SHIP_003", "AUDIKW_1"]:
            p = collection.get(name)
            assert p.sym
            assert (abs(p.matrix - p.matrix.T)).nnz == 0

    def test_unsym_problems_are_unsymmetric(self):
        for name in ["PRE2", "TWOTONE"]:
            p = collection.get(name)
            assert not p.sym

    def test_suites_partition(self):
        small = collection.suite("small")
        large = collection.suite("large")
        assert len(small) == 8 and len(large) == 3
        assert {p.suite for p in small} == {"small"}
        assert {p.suite for p in large} == {"large"}

    def test_get_is_cached(self):
        assert collection.get("TWOTONE") is collection.get("TWOTONE")

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            collection.get("NOT_A_MATRIX")

    def test_paper_metadata_present(self):
        p = collection.get("GUPTA3")
        assert p.paper_order == 16783
        assert p.type_label == "SYM"
