"""Tests for the tree_agg (hierarchical reduction) mechanism."""

import pytest

from repro import run_factorization
from repro.matrices import generators as gen
from repro.mechanisms import (
    Load,
    MechanismConfig,
    TreeAggMechanism,
    create_mechanism,
)
from repro.solver.driver import SolverConfig
from repro.symbolic import analyze_matrix

from helpers import make_world

PERIOD = 1e-3


def tree_world(nprocs, period=PERIOD, **kw):
    cfg = MechanismConfig(gossip_period=period, **kw)
    return make_world(nprocs, lambda: TreeAggMechanism(cfg))


def init(procs):
    for p in procs:
        p.mechanism.initialize_view([Load.ZERO] * len(procs))


class TestTreeAggProtocol:
    def test_registered(self):
        assert isinstance(create_mechanism("tree_agg"), TreeAggMechanism)

    def test_delta_climbs_to_root(self):
        # 4-ary tree on 8 ranks: 5..8 don't exist; rank 7 -> parent 1 -> root.
        sim, net, procs = tree_world(8)
        init(procs)
        procs[7].mechanism.on_local_change(Load(25.0, 5.0))
        sim.run(until=PERIOD / 2)  # before the first summary tick
        # Root folded the delta in; relays saw it opportunistically.
        assert procs[0].mechanism.view.get(7) == Load(25.0, 5.0)
        assert procs[1].mechanism.view.get(7) == Load(25.0, 5.0)
        # A leaf in another subtree hasn't heard yet.
        assert procs[2].mechanism.view.get(7).workload == 0.0
        # Depth-many messages, not a broadcast.
        assert net.stats.by_type["tree_delta"] == 2

    def test_summary_disseminates_to_all(self):
        sim, net, procs = tree_world(8)
        init(procs)
        procs[7].mechanism.on_local_change(Load(25.0, 5.0))
        sim.run(until=5 * PERIOD)
        for p in procs:
            if p.mechanism.rank != 7:
                assert p.mechanism.view.get(7) == Load(25.0, 5.0)
        assert procs[0].mechanism.summaries_sent >= 1

    def test_quiet_root_sends_no_summaries(self):
        sim, net, procs = tree_world(8)
        init(procs)
        sim.run(until=10 * PERIOD)
        assert net.stats.sent_total == 0

    def test_summary_batches_many_updates(self):
        sim, net, procs = tree_world(8)
        init(procs)

        def burst():
            for rank in (3, 4, 7):
                procs[rank].mechanism.on_local_change(Load(10.0 * rank, 0.0))

        sim.schedule(1e-5, burst)
        sim.run(until=1.5 * PERIOD)
        # One summary wave carries all three entries: P-1 = 7 messages.
        assert net.stats.by_type["tree_summary"] == 7
        assert procs[5].mechanism.view.get(3).workload == 30.0
        assert procs[5].mechanism.view.get(7).workload == 70.0

    def test_own_entry_stays_authoritative(self):
        sim, net, procs = tree_world(4)
        init(procs)
        m3 = procs[3].mechanism
        # Rank 3 knows its own load better than any (stale) summary.
        m3.on_local_change(Load(50.0, 0.0))
        procs[0].mechanism.view.set(3, Load(1.0, 0.0))
        procs[0].mechanism._summary_dirty.add(3)
        sim.run(until=2 * PERIOD)
        assert m3._my_load.workload == 50.0
        assert m3.view.get(3).workload == 50.0

    def test_root_timer_cancelled_on_shutdown(self):
        sim, net, procs = tree_world(4)
        init(procs)
        for p in procs:
            p.mechanism.shutdown()
        assert sim.run(until=1.0) in ("drained", "horizon")
        assert net.stats.sent_total == 0


class TestTreeAggInSolver:
    @pytest.fixture(scope="class")
    def tree(self):
        return analyze_matrix(gen.grid_laplacian((12, 12, 4)), name="treegrid")

    def test_factorization_completes_and_validates(self, tree):
        from repro.solver import validate_result

        r = run_factorization(tree, 8, mechanism="tree_agg")
        assert r.factorization_time > 0
        assert validate_result(r, tree).ok

    def test_uses_tree_message_types(self, tree):
        r = run_factorization(tree, 8, mechanism="tree_agg")
        assert r.messages_by_type.get("tree_delta", 0) > 0
        assert r.messages_by_type.get("tree_summary", 0) > 0

    def test_same_seed_identical_results(self, tree):
        a = run_factorization(tree, 8, mechanism="tree_agg",
                              config=SolverConfig(seed=2))
        b = run_factorization(tree, 8, mechanism="tree_agg",
                              config=SolverConfig(seed=2))
        assert a.factorization_time == b.factorization_time
        assert a.state_messages == b.state_messages
        assert a.messages_by_type == b.messages_by_type

    def test_hypercube_derived_tree_works(self, tree):
        cfg = SolverConfig(topology="hypercube")
        r = run_factorization(tree, 8, mechanism="tree_agg", config=cfg)
        assert r.factorization_time > 0


class TestTreeAggChaos:
    """tree_agg survives lossy networks — parity with the gossip/neighborhood
    chaos coverage (the tree path makes losses *more* damaging: a dropped
    climb loses every descendant's delta in the batch)."""

    @pytest.fixture(scope="class")
    def tree(self):
        return analyze_matrix(gen.grid_laplacian((10, 10, 4)), name="treechaos")

    @pytest.mark.parametrize("resilience", [True, False])
    def test_completes_under_20pct_state_loss(self, tree, resilience):
        from repro.faults import FaultPlan
        from repro.solver import validate_result

        cfg = SolverConfig(
            fault_plan=FaultPlan.uniform_loss(0.20),
            resilience=resilience,
        )
        r = run_factorization(tree, 8, mechanism="tree_agg", config=cfg)
        assert (r.fault_stats or {}).get("dropped", 0) > 0
        assert validate_result(r, tree).ok

    def test_view_error_stays_bounded_under_loss(self, tree):
        import math

        from repro.faults import FaultPlan

        clean = run_factorization(
            tree, 8, mechanism="tree_agg", config=SolverConfig(seed=3)
        )
        cfg = SolverConfig(fault_plan=FaultPlan.uniform_loss(0.20), seed=3)
        lossy = run_factorization(tree, 8, mechanism="tree_agg", config=cfg)
        # Dropped climbs/summaries stale the views but must not unbound them:
        # the decision-time error stays within one unit of relative error of
        # the lossless run on the same seed.
        assert math.isfinite(lossy.mean_view_error_workload)
        assert (
            lossy.mean_view_error_workload
            <= clean.mean_view_error_workload + 1.0
        )

    def test_loss_is_deterministic_per_seed(self, tree):
        from repro.faults import FaultPlan

        cfg = SolverConfig(fault_plan=FaultPlan.uniform_loss(0.20), seed=5)
        a = run_factorization(tree, 8, mechanism="tree_agg", config=cfg)
        b = run_factorization(tree, 8, mechanism="tree_agg", config=cfg)
        assert a.fault_stats == b.fault_stats
        assert a.messages_by_type == b.messages_by_type
        assert a.factorization_time == b.factorization_time
