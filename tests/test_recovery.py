"""End-to-end crash tolerance: detector, reclaim, rejoin, and validation.

The acceptance bar of the task-recovery layer: every mechanism must carry a
mid-run crash-with-restart to a *valid* completion — no task lost (factor
conservation would fail short) and none double-executed (it would fail
long) — with the crashed rank suspected, its in-flight SLAVE2 parts
reclaimed where needed, and zero false suspicions of live ranks.
"""

from dataclasses import replace

import pytest

from repro.faults import CrashFault, FaultPlan
from repro.faults.plan import LinkFault
from repro.matrices import generators as gen
from repro.mechanisms import IncrementsMechanism, MechanismConfig
from repro.mechanisms.registry import available_mechanisms
from repro.simcore.network import Channel
from repro.solver.driver import SolverConfig, run_factorization
from repro.solver.validate import validate_result
from repro.symbolic import analyze_matrix

from helpers import make_world

NPROCS = 8
ALL_MECHS = tuple(sorted(available_mechanisms()))


@pytest.fixture(scope="module")
def tree():
    return analyze_matrix(gen.grid_laplacian((12, 12, 4)), name="recovgrid")


def recovery_config(span, plan, **kw):
    """The full recovery stack, detector timeouts scaled to the makespan."""
    return SolverConfig(
        seed=1,
        fault_plan=plan,
        resilience=True,
        recovery=True,
        failure_detection=True,
        heartbeat_period=span / 50.0,
        suspect_timeout=span / 4.0,
        **kw,
    )


def crash_plan(span, rank=2, at=0.25, downtime=0.5):
    return FaultPlan(
        crashes=(
            CrashFault(rank=rank, time=span * at, restart_after=span * downtime),
        )
    )


class TestCrashAcceptance:
    """ISSUE acceptance: every mechanism survives a mid-run crash (DES,
    resilience=True) with ``validate_result`` passing."""

    @pytest.mark.parametrize("mechanism", ALL_MECHS)
    def test_mid_run_crash_completes_and_validates(self, tree, mechanism):
        ref = run_factorization(tree, NPROCS, mechanism, config=SolverConfig(seed=1))
        span = ref.factorization_time
        cfg = recovery_config(span, crash_plan(span))
        r = run_factorization(tree, NPROCS, mechanism, config=cfg)
        report = validate_result(r, tree)
        assert report.ok, report.failures
        assert r.fault_stats["crashes"] == 1
        assert r.fault_stats["restarts"] == 1
        rec = r.recovery_stats
        assert rec is not None
        # the crashed rank — and only it — ends up suspected (the oracle
        # opts out of recovery entirely: no detector, no suspicion)
        if mechanism == "oracle":
            assert rec["ranks_suspected"] == []
        else:
            assert rec["ranks_suspected"] == [2]
        assert rec["false_suspicions"] == 0
        assert rec["rank_downtime_seconds"]["2"] > 0

    def test_reclaimed_parts_are_not_double_executed(self, tree):
        """A downtime long enough to trigger reclaim: the revoked parts are
        re-scheduled on survivors, and factor conservation (validate) proves
        they ran exactly once."""
        ref = run_factorization(tree, NPROCS, "increments", config=SolverConfig(seed=1))
        span = ref.factorization_time
        # restart only lands after the fault-free end: suspicion and the
        # revoke campaign must finish their work without the victim.  Rank 6
        # at 25% is a crash point with SLAVE2 parts still in flight.
        cfg = recovery_config(span, crash_plan(span, rank=6, downtime=4.0))
        r = run_factorization(tree, NPROCS, "increments", config=cfg)
        report = validate_result(r, tree)
        assert report.ok, report.failures
        assert r.recovery_stats["tasks_reclaimed"] >= 1
        assert r.recovery_stats["ranks_suspected"] == [6]
        assert r.recovery_stats["false_suspicions"] == 0

    def test_recovery_stats_absent_by_default(self, tree):
        r = run_factorization(tree, NPROCS, "increments", config=SolverConfig(seed=1))
        assert r.recovery_stats is None
        assert "recovery_stats" not in r.to_dict()


class TestFalsePositives:
    """A live-but-unheard rank must not corrupt the run."""

    def test_partitioned_rank_is_suspected_but_run_stays_valid(self, tree):
        """Rank 3's STATE channel is severed (it is alive and computing —
        DATA still flows).  The detector suspects it, decisions route
        around it, and the run still completes and validates; the driver
        books the suspicion as a false positive because the rank never
        crashed."""
        ref = run_factorization(tree, NPROCS, "increments", config=SolverConfig(seed=1))
        span = ref.factorization_time
        plan = FaultPlan(
            link_faults=(LinkFault(src=3, channel=Channel.STATE, drop_prob=1.0),)
        )
        cfg = recovery_config(span, plan)
        r = run_factorization(tree, NPROCS, "increments", config=cfg)
        report = validate_result(r, tree)
        assert report.ok, report.failures
        rec = r.recovery_stats
        assert 3 in rec["ranks_suspected"]
        assert rec["false_suspicions"] >= 1
        # the partitioned rank never crashed, so no downtime was booked
        assert rec["rank_downtime_seconds"] == {}

    def test_busy_process_does_not_suspect_the_cluster(self):
        """The silence scan is skipped while the owning (unthreaded)
        process computes: queued heartbeats are its own deafness, not peer
        death.  Without the guard P0 would suspect a perfectly live P1
        after any compute block longer than the timeout."""
        cfg = MechanismConfig(
            failure_detection=True,
            heartbeat_period=1e-4,
            suspect_timeout=4e-4,
        )
        sim, net, procs = make_world(2, lambda: IncrementsMechanism(cfg))
        m0 = procs[0].mechanism
        procs[0].queue_task(duration=5e-3, label="long-front")
        sim.run(until=6e-3)
        assert m0.suspected_peers == set()
        assert m0.ever_suspected_peers == set()

    def test_silent_peer_is_suspected_while_idle(self):
        """Same detector, but P1 is genuinely dead: an idle P0 suspects it
        once the timeout elapses."""
        cfg = MechanismConfig(
            failure_detection=True,
            heartbeat_period=1e-4,
            suspect_timeout=4e-4,
        )
        sim, net, procs = make_world(2, lambda: IncrementsMechanism(cfg))
        m0 = procs[0].mechanism
        sim.schedule(2e-4, lambda: procs[1].crash(), label="kill-P1")
        sim.run(until=5e-3)
        assert 1 in m0.suspected_peers
        assert 1 in m0.ever_suspected_peers


class TestValidateCrashAware:
    """The snapshot-count identity relaxes by at most one round per crash."""

    @pytest.mark.parametrize("mechanism", ["snapshot", "partial_snapshot"])
    def test_snapshot_count_bound_under_crash(self, tree, mechanism):
        ref = run_factorization(tree, NPROCS, mechanism, config=SolverConfig(seed=1))
        span = ref.factorization_time
        cfg = recovery_config(span, crash_plan(span))
        r = run_factorization(tree, NPROCS, mechanism, config=cfg)
        crashes = r.fault_stats["crashes"]
        assert r.decisions <= r.snapshot_count <= r.decisions + crashes
        assert validate_result(r, tree).ok


class TestPlanStability:
    """Restart crashes must round-trip through the cache-key surface."""

    def test_describe_and_tag_include_restart(self):
        a = FaultPlan(crashes=(CrashFault(rank=2, time=1e-3),))
        b = FaultPlan(crashes=(CrashFault(rank=2, time=1e-3, restart_after=5e-4),))
        assert a.describe() != b.describe()
        assert a.tag() != b.tag()
        assert b.tag() == replace(b).tag()  # stable across instances
