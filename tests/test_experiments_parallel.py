"""Parallel execution + persistent disk cache: determinism and plumbing.

The load-bearing guarantee of :mod:`repro.experiments.parallel` and
:mod:`repro.experiments.diskcache` is that neither fan-out nor persistence
can ever change a result: a run computed in a worker process, loaded from a
cold disk cache, or re-loaded from a warm one is *identical* (metric for
metric) to one computed inline.
"""

import json
import pickle

import pytest

from repro.experiments import diskcache as dc
from repro.experiments.diskcache import DiskCache
from repro.experiments.parallel import (
    PARALLELIZABLE_TARGETS,
    RunSpec,
    grid_for_targets,
    prefetch,
)
from repro.experiments.runner import (
    ExperimentRunner,
    ExperimentScale,
    make_run_key,
)
from repro.matrices import collection

#: A deliberately tiny grid (small problems, few procs) so four full
#: compute passes stay cheap in CI.
TINY_SPECS = (
    RunSpec("TWOTONE", 4, "increments", "workload"),
    RunSpec("TWOTONE", 8, "increments", "workload"),
    RunSpec("TWOTONE", 8, "snapshot", "workload"),
    RunSpec("GUPTA3", 8, "naive", "memory"),
)


def _run_all_serial(runner):
    return [
        runner.run(s.problem, s.nprocs, s.mechanism, s.strategy,
                   threaded=s.threaded)
        for s in TINY_SPECS
    ]


class TestGrid:
    def test_table5_and_6_share_one_grid(self):
        scale = ExperimentScale(fast=True)
        g5 = grid_for_targets(["table5"], scale)
        g56 = grid_for_targets(["table5", "table6"], scale)
        assert g5 == g56
        n_large = len(collection.suite("large"))
        assert len(g5) == n_large * len(scale.large_procs) * 2

    def test_grid_matches_table_request_order(self):
        """Insertion order must mirror tables.table5's own loop nest."""
        scale = ExperimentScale(fast=True)
        g = grid_for_targets(["table5"], scale)
        expected = [
            RunSpec(p.name, nprocs, mech, "workload")
            for nprocs in scale.large_procs
            for p in collection.suite("large")
            for mech in ("increments", "snapshot")
        ]
        assert g == expected

    def test_table7_is_threaded(self):
        g = grid_for_targets(["table7"], ExperimentScale(fast=True))
        assert g and all(s.threaded for s in g)

    def test_unknown_targets_contribute_nothing(self):
        assert grid_for_targets(["figure1", "ablations", "robustness"]) == []

    def test_every_parallelizable_target_enumerates(self):
        for t in PARALLELIZABLE_TARGETS:
            assert grid_for_targets([t], ExperimentScale(fast=True))


class TestDiskCache:
    def test_roundtrip(self, tmp_path):
        runner = ExperimentRunner()
        result = runner.run("TWOTONE", 4, "naive", "memory")
        key = runner.key_for("TWOTONE", 4, "naive", "memory")
        cache = DiskCache(tmp_path)
        cache.put(key, result)
        assert len(cache) == 1
        loaded = DiskCache(tmp_path).get(key)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()

    def test_miss_on_unknown_key(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = ExperimentRunner().key_for("TWOTONE", 4, "naive", "memory")
        assert cache.get(key) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        runner = ExperimentRunner()
        result = runner.run("TWOTONE", 4, "naive", "memory")
        key = runner.key_for("TWOTONE", 4, "naive", "memory")
        cache = DiskCache(tmp_path)
        path = cache.put(key, result)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert not path.exists()

    def test_key_swap_detected(self, tmp_path):
        """An entry whose payload does not match its address is rejected."""
        runner = ExperimentRunner()
        result = runner.run("TWOTONE", 4, "naive", "memory")
        k1 = runner.key_for("TWOTONE", 4, "naive", "memory")
        k2 = runner.key_for("TWOTONE", 4, "naive", "workload")
        cache = DiskCache(tmp_path)
        entry = {"format": dc.FORMAT_VERSION, "version": "x",
                 "key": k1, "result": result}
        p2 = cache.path_for(k2)
        p2.parent.mkdir(parents=True, exist_ok=True)
        p2.write_bytes(pickle.dumps(entry))
        assert cache.get(k2) is None

    def test_package_version_invalidates(self, tmp_path, monkeypatch):
        runner = ExperimentRunner()
        result = runner.run("TWOTONE", 4, "naive", "memory")
        key = runner.key_for("TWOTONE", 4, "naive", "memory")
        DiskCache(tmp_path).put(key, result)
        monkeypatch.setattr(dc, "__version__", "0.0.0-other")
        # Same key, different package version ⇒ different address ⇒ miss.
        assert DiskCache(tmp_path).get(key) is None

    def test_clear(self, tmp_path):
        runner = ExperimentRunner()
        result = runner.run("TWOTONE", 4, "naive", "memory")
        cache = DiskCache(tmp_path)
        cache.put(runner.key_for("TWOTONE", 4, "naive", "memory"), result)
        assert cache.clear() == 1
        assert len(cache) == 0


class TestRunnerWithDiskCache:
    def test_warm_cache_simulates_nothing(self, tmp_path):
        cold = ExperimentRunner(disk_cache=DiskCache(tmp_path))
        a = cold.run("TWOTONE", 4, "naive", "memory")
        assert cold.runs_simulated == 1

        warm = ExperimentRunner(disk_cache=DiskCache(tmp_path))
        b = warm.run("TWOTONE", 4, "naive", "memory")
        assert warm.runs_simulated == 0
        assert warm.disk_hits == 1
        assert a.to_dict() == b.to_dict()

    def test_lookup_never_simulates(self, tmp_path):
        runner = ExperimentRunner(disk_cache=DiskCache(tmp_path))
        key = runner.key_for("TWOTONE", 4, "naive", "memory")
        assert runner.lookup(key) is None
        assert runner.runs_simulated == 0


class TestParallelGoldenDeterminism:
    """Workers and persistence must never change results."""

    @pytest.fixture(scope="class")
    def golden(self):
        runner = ExperimentRunner()
        return [r.to_dict() for r in _run_all_serial(runner)]

    def test_prefetch_jobs2_matches_serial(self, golden):
        runner = ExperimentRunner()
        n = prefetch(runner, [], 2, specs=list(TINY_SPECS))
        assert n == len(TINY_SPECS)
        assert runner.runs_simulated == len(TINY_SPECS)
        # Every subsequent .run() is a pure cache hit...
        results = _run_all_serial(runner)
        assert runner.runs_simulated == len(TINY_SPECS)
        # ...and metric-for-metric identical to the serial golden runs.
        assert [r.to_dict() for r in results] == golden

    def test_prefetch_warms_shared_disk_cache(self, golden, tmp_path):
        runner = ExperimentRunner(disk_cache=DiskCache(tmp_path))
        prefetch(runner, [], 2, specs=list(TINY_SPECS))
        # Workers persisted their own results (atomic, concurrent writers):
        assert len(DiskCache(tmp_path)) == len(TINY_SPECS)

        warm = ExperimentRunner(disk_cache=DiskCache(tmp_path))
        assert prefetch(warm, [], 2, specs=list(TINY_SPECS)) == 0
        results = _run_all_serial(warm)
        assert warm.runs_simulated == 0
        assert [r.to_dict() for r in results] == golden

    def test_prefetch_jobs1_is_a_noop(self):
        runner = ExperimentRunner()
        assert prefetch(runner, ["table5"], 1) == 0
        assert runner.runs_simulated == 0


class TestCLI:
    def test_jobs_and_cache_flags(self, tmp_path, capsys):
        """`table4 --fast` grid through the real CLI: --jobs 2 with a cold
        disk cache, then a warm second invocation that simulates nothing,
        with identical table payloads and --json run records throughout.

        The goldens compare the *table payloads* (footer stripped: it
        carries wall-clock timings) and the *parsed* JSON export — the
        deliverables — not raw process stdout, which may legitimately gain
        progress or cache-accounting lines."""
        from repro.experiments.__main__ import main

        def invoke(name, *extra):
            out = tmp_path / f"{name}.txt"
            js = tmp_path / f"{name}.json"
            rc = main(["table4", "--fast", "--out", str(out),
                       "--json", str(js), *extra])
            capsys.readouterr()
            assert rc == 0
            # Drop the timing footer: wall-clock seconds always differ.
            tables = out.read_text().split("\n[")[0]
            return tables, json.loads(js.read_text())

        cache = str(tmp_path / "cache")
        serial_tables, serial_json = invoke("serial")
        par_tables, par_json = invoke("parallel", "--jobs", "2",
                                      "--cache-dir", cache)
        warm_tables, warm_json = invoke("warm", "--cache-dir", cache)

        assert par_tables == serial_tables
        assert warm_tables == serial_tables
        assert par_json == serial_json
        assert warm_json == serial_json

    def test_extensions_golden_across_jobs_and_cache(self, tmp_path, capsys):
        """`extensions --fast` is byte-identical between --jobs 1 and
        --jobs 2 and between a cold and a warm disk cache — the same golden
        the paper tables get, now covering the extensions table (its target
        was added to PARALLELIZABLE_TARGETS with the backend work)."""
        from repro.experiments.__main__ import main
        from repro.experiments.parallel import PARALLELIZABLE_TARGETS

        assert "extensions" in PARALLELIZABLE_TARGETS

        def invoke(name, *extra):
            out = tmp_path / f"{name}.txt"
            js = tmp_path / f"{name}.json"
            rc = main(["extensions", "--fast", "--out", str(out),
                       "--json", str(js), *extra])
            capsys.readouterr()
            assert rc == 0
            tables = out.read_text().split("\n[")[0]
            return tables, json.loads(js.read_text())

        cache = str(tmp_path / "cache")
        serial_tables, serial_json = invoke("serial")
        par_tables, par_json = invoke("parallel", "--jobs", "2",
                                      "--cache-dir", cache)
        warm_tables, warm_json = invoke("warm", "--cache-dir", cache)

        assert par_tables == serial_tables
        assert warm_tables == serial_tables
        assert par_json == serial_json
        assert warm_json == serial_json

    def test_no_disk_cache_flag(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        cache = tmp_path / "cache"
        rc = main(["table3", "--fast", "--cache-dir", str(cache),
                   "--no-disk-cache"])
        capsys.readouterr()
        assert rc == 0
        assert not cache.exists()

    def test_negative_jobs_rejected(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["table3", "--fast", "--jobs", "-2"])
