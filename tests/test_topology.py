"""Tests for repro.topology: seeded neighbor-graph construction."""

import pytest

from repro.topology import (
    Topology,
    build_topology,
    complete,
    hypercube,
    k_regular_random,
    ring,
    tree,
)
from repro.topology.graph import TOPOLOGY_KINDS


def assert_valid(topo, nprocs):
    assert topo.nprocs == nprocs
    for r in range(nprocs):
        for n in topo.neighbors(r):
            assert 0 <= n < nprocs and n != r
            assert r in topo.neighbors(n)  # symmetry
    if nprocs > 1:
        # connectivity: everyone reachable from rank 0
        assert all(topo.distance(0, r) >= 0 for r in range(nprocs))


class TestConstructors:
    @pytest.mark.parametrize("nprocs", [1, 2, 3, 8, 17, 64])
    @pytest.mark.parametrize("kind", TOPOLOGY_KINDS)
    def test_valid_and_connected(self, kind, nprocs):
        assert_valid(build_topology(kind, nprocs), nprocs)

    def test_ring_neighbors(self):
        t = ring(8, 1)
        assert t.neighbors(0) == (1, 7)
        assert t.neighbors(3) == (2, 4)

    def test_ring_two_per_side(self):
        t = ring(8, 2)
        assert t.neighbors(0) == (1, 2, 6, 7)

    def test_hypercube_power_of_two(self):
        t = hypercube(8)
        assert t.neighbors(0) == (1, 2, 4)
        assert t.neighbors(5) == (1, 4, 7)
        assert t.diameter == 3

    def test_hypercube_non_power_of_two_connected(self):
        for n in (3, 5, 6, 7, 12, 100):
            assert_valid(hypercube(n), n)

    def test_tree_parents(self):
        t = tree(7, 2)
        assert t.neighbors(0) == (1, 2)
        assert t.neighbors(1) == (0, 3, 4)
        assert t.neighbors(6) == (2,)

    def test_complete_everyone_adjacent(self):
        t = complete(5)
        assert all(t.degree(r) == 4 for r in range(5))
        assert t.diameter == 1

    def test_kreg_degree_near_target(self):
        t = k_regular_random(32, 4, seed=1)
        assert t.max_degree <= 4
        # ring backbone guarantees at least degree 2
        assert all(t.degree(r) >= 2 for r in range(32))

    def test_kreg_small_world_falls_back_to_complete(self):
        t = k_regular_random(4, 4, seed=0)
        assert all(t.degree(r) == 3 for r in range(4))


class TestDeterminism:
    def test_kreg_same_seed_same_graph(self):
        a = k_regular_random(24, 4, seed=7)
        b = k_regular_random(24, 4, seed=7)
        assert a.edges == b.edges

    def test_kreg_different_seed_different_graph(self):
        a = k_regular_random(24, 4, seed=7)
        b = k_regular_random(24, 4, seed=8)
        assert a.edges != b.edges

    def test_aggregation_tree_deterministic(self):
        a = build_topology("hypercube", 16).aggregation_tree()
        b = build_topology("hypercube", 16).aggregation_tree()
        assert a == b


class TestQueries:
    def test_distance_ring(self):
        t = ring(10, 1)
        assert t.distance(0, 5) == 5
        assert t.distance(0, 9) == 1
        assert t.distance(3, 3) == 0

    def test_aggregation_tree_spans(self):
        for kind in TOPOLOGY_KINDS:
            topo = build_topology(kind, 13)
            parents, children = topo.aggregation_tree(0)
            assert parents[0] == -1
            assert sorted(r for cs in children for r in cs) == list(range(1, 13))
            for r in range(1, 13):
                assert r in children[parents[r]]
                # tree edges are graph edges
                assert parents[r] in topo.neighbors(r)

    def test_aggregation_tree_of_tree_kind_is_construction_tree(self):
        topo = build_topology("tree", 9, degree=2)
        parents, _ = topo.aggregation_tree(0)
        assert list(parents) == [-1, 0, 0, 1, 1, 2, 2, 3, 3]

    def test_edges_listed_once(self):
        t = ring(6, 1)
        assert t.edges == [(0, 1), (0, 5), (1, 2), (2, 3), (3, 4), (4, 5)]


class TestValidation:
    def test_asymmetric_rejected(self):
        with pytest.raises(ValueError, match="not symmetric"):
            Topology("bad", [[1], []])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="itself"):
            Topology("bad", [[0, 1], [0]])

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError, match="not connected"):
            Topology("bad", [[1], [0], [3], [2]])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown topology kind"):
            build_topology("moebius", 8)

    def test_bad_nprocs_rejected(self):
        with pytest.raises(ValueError, match="nprocs"):
            build_topology("ring", 0)
