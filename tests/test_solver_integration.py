"""Integration tests of the full simulated factorization.

These are the reproduction's strongest guarantees: every (mechanism,
strategy, nprocs, threading) combination must complete the whole task graph
with conserved factor entries, zero residual active memory (checked inside
the driver), the statically predicted number of dynamic decisions, and
deterministic results.
"""

import pytest

from repro import run_factorization
from repro.mapping import compute_mapping
from repro.matrices import collection, generators as gen
from repro.mechanisms import MECHANISM_NAMES
from repro.simcore.network import NetworkConfig
from repro.solver.driver import SolverConfig
from repro.symbolic import analyze_matrix


@pytest.fixture(scope="module")
def small_tree():
    return analyze_matrix(gen.grid_laplacian((12, 12, 4)), name="small-grid")


@pytest.fixture(scope="module")
def problem():
    return collection.get("TWOTONE")


class TestCompletion:
    @pytest.mark.parametrize("mechanism", ["naive", "increments", "snapshot"])
    @pytest.mark.parametrize("strategy", ["workload", "memory"])
    def test_all_combinations_complete(self, small_tree, mechanism, strategy):
        r = run_factorization(small_tree, 8, mechanism=mechanism, strategy=strategy)
        assert r.factorization_time > 0
        assert r.total_factor_entries == pytest.approx(
            small_tree.total_factor_entries
        )

    @pytest.mark.parametrize("mechanism", ["increments", "snapshot"])
    def test_threaded_variants_complete(self, small_tree, mechanism):
        cfg = SolverConfig(threaded=True)
        r = run_factorization(small_tree, 8, mechanism=mechanism, config=cfg)
        assert r.threaded
        assert r.factorization_time > 0

    def test_single_process_run(self, small_tree):
        r = run_factorization(small_tree, 1, mechanism="increments")
        assert r.factorization_time > 0
        assert r.state_messages == 0
        assert r.decisions == 0

    def test_two_processes(self, small_tree):
        r = run_factorization(small_tree, 2, mechanism="increments")
        assert r.factorization_time > 0

    def test_real_problem(self, problem):
        r = run_factorization(problem, 16, mechanism="increments")
        assert r.factorization_time > 0


class TestInvariants:
    def test_decision_count_matches_static_mapping(self, small_tree):
        mapping = compute_mapping(small_tree, 8)
        for mech in MECHANISM_NAMES:
            r = run_factorization(small_tree, 8, mechanism=mech)
            assert r.decisions == mapping.n_decisions

    def test_snapshot_count_equals_decisions(self, small_tree):
        r = run_factorization(small_tree, 8, mechanism="snapshot")
        assert r.snapshot_count == r.decisions

    def test_no_snapshots_for_maintained_mechanisms(self, small_tree):
        for mech in ("naive", "increments"):
            r = run_factorization(small_tree, 8, mechanism=mech)
            assert r.snapshot_count == 0
            assert r.snapshot_union_time == 0.0

    def test_peak_memory_at_least_largest_local_allocation(self, small_tree):
        r = run_factorization(small_tree, 8, mechanism="increments",
                              strategy="memory")
        assert r.peak_active_memory > 0
        # factorization cannot beat the per-front lower bound by definition
        assert r.peak_active.sum() > 0

    def test_makespan_at_least_critical_path_lower_bound(self, small_tree):
        """time ≥ total flops / (P × speed) — trivially necessary."""
        cfg = SolverConfig()
        r = run_factorization(small_tree, 8, mechanism="increments", config=cfg)
        assert (
            r.factorization_time
            >= small_tree.total_flops / (8 * cfg.proc_speed)
        )

    def test_busy_time_bounded_by_makespan(self, small_tree):
        r = run_factorization(small_tree, 8, mechanism="increments")
        # drain-phase message treatment can exceed the makespan only barely
        assert (r.busy_time <= r.factorization_time * 1.05 + 1e-3).all()


class TestDeterminism:
    def test_identical_runs_identical_results(self, small_tree):
        a = run_factorization(small_tree, 8, mechanism="increments")
        b = run_factorization(small_tree, 8, mechanism="increments")
        assert a.factorization_time == b.factorization_time
        assert (a.peak_active == b.peak_active).all()
        assert a.state_messages == b.state_messages

    def test_snapshot_runs_deterministic(self, small_tree):
        a = run_factorization(small_tree, 8, mechanism="snapshot")
        b = run_factorization(small_tree, 8, mechanism="snapshot")
        assert a.factorization_time == b.factorization_time
        assert a.state_messages == b.state_messages


class TestPaperShapes:
    """The headline qualitative results, pinned as regressions."""

    def test_snapshot_uses_far_fewer_state_messages(self, problem):
        inc = run_factorization(problem, 16, mechanism="increments")
        snp = run_factorization(problem, 16, mechanism="snapshot")
        assert snp.state_messages < inc.state_messages / 2

    def test_snapshot_slower_on_workload_strategy(self):
        p = collection.get("CONV3D64")
        inc = run_factorization(p, 32, mechanism="increments", strategy="workload")
        snp = run_factorization(p, 32, mechanism="snapshot", strategy="workload")
        assert snp.factorization_time > inc.factorization_time

    def test_naive_memory_no_better_than_increments(self):
        p = collection.get("AUDIKW_1")
        nai = run_factorization(p, 32, mechanism="naive", strategy="memory")
        inc = run_factorization(p, 32, mechanism="increments", strategy="memory")
        assert nai.peak_active_memory >= inc.peak_active_memory * 0.999

    def test_threading_reduces_snapshot_time(self):
        p = collection.get("CONV3D64")
        plain = run_factorization(p, 32, mechanism="snapshot", strategy="workload")
        threaded = run_factorization(
            p, 32, mechanism="snapshot", strategy="workload",
            config=SolverConfig(threaded=True),
        )
        assert threaded.factorization_time < plain.factorization_time
        assert threaded.snapshot_union_time < plain.snapshot_union_time

    def test_no_more_master_reduces_messages(self, small_tree):
        on = run_factorization(small_tree, 8, mechanism="increments")
        off = run_factorization(
            small_tree, 8, mechanism="increments",
            config=SolverConfig(no_more_master=False),
        )
        assert on.state_messages < off.state_messages

    def test_high_latency_hurts_increments_relatively(self, small_tree):
        """§4.5: on high-latency links the increments volume becomes costly."""
        fast = SolverConfig(network=NetworkConfig.fast())
        slow = SolverConfig(network=NetworkConfig.high_latency())
        inc_fast = run_factorization(small_tree, 8, "increments", config=fast)
        inc_slow = run_factorization(small_tree, 8, "increments", config=slow)
        assert inc_slow.factorization_time > inc_fast.factorization_time


class TestThresholdEffect:
    def test_smaller_threshold_more_messages(self, small_tree):
        lo = run_factorization(small_tree, 8, "increments",
                               config=SolverConfig(threshold_frac=0.02))
        hi = run_factorization(small_tree, 8, "increments",
                               config=SolverConfig(threshold_frac=2.0))
        assert lo.state_messages > hi.state_messages
