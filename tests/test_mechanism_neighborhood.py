"""Tests for the neighborhood (topology-aware, hop-decayed) mechanism."""

import pytest

from repro import run_factorization
from repro.faults import FaultPlan
from repro.matrices import generators as gen
from repro.mechanisms import (
    Load,
    MechanismConfig,
    NeighborhoodMechanism,
    create_mechanism,
)
from repro.solver.driver import SolverConfig
from repro.symbolic import analyze_matrix

from helpers import make_world


def neighborhood_world(nprocs, **kw):
    kw.setdefault("topology", "ring")
    kw.setdefault("topology_degree", 1)  # plain ring: 2 neighbors each
    cfg = MechanismConfig(**kw)
    return make_world(nprocs, lambda: NeighborhoodMechanism(cfg))


def init(procs):
    for p in procs:
        p.mechanism.initialize_view([Load.ZERO] * len(procs))


class TestNeighborhoodProtocol:
    def test_registered(self):
        assert isinstance(create_mechanism("neighborhood"), NeighborhoodMechanism)

    def test_publish_reaches_neighbors_exactly(self):
        sim, net, procs = neighborhood_world(8)
        init(procs)
        procs[0].mechanism.on_local_change(Load(40.0, 8.0))
        sim.run()
        assert procs[1].mechanism.view.get(0) == Load(40.0, 8.0)
        assert procs[7].mechanism.view.get(0) == Load(40.0, 8.0)

    def test_beyond_horizon_is_decayed_estimate(self):
        sim, net, procs = neighborhood_world(8, neighbor_horizon=2,
                                             neighbor_decay=0.5)
        init(procs)
        procs[0].mechanism.on_local_change(Load(40.0, 0.0))
        sim.run()
        # rank 2 is two hops from 0 on the ring: one relay, decay 0.5.
        assert procs[2].mechanism.view.get(0).workload == pytest.approx(20.0)
        # rank 4 is beyond the horizon: the wave never reached it.
        assert procs[4].mechanism.view.get(0).workload == 0.0

    def test_relay_wave_visits_each_rank_once(self):
        sim, net, procs = neighborhood_world(8, neighbor_horizon=10)
        init(procs)
        procs[0].mechanism.on_local_change(Load(40.0, 0.0))
        sim.run()
        # Even with a huge horizon the per-origin version dedup caps the
        # wave: every rank forwards a given version at most once.
        assert net.stats.by_type["neighbor_load"] <= 3 * len(procs)

    def test_message_cost_independent_of_nprocs(self):
        counts = {}
        for nprocs in (8, 32):
            sim, net, procs = neighborhood_world(nprocs, neighbor_horizon=2)
            init(procs)
            procs[0].mechanism.on_local_change(Load(40.0, 0.0))
            sim.run()
            counts[nprocs] = net.stats.by_type["neighbor_load"]
        # Bounded-degree graph + bounded horizon: cost does not grow with P
        # (contrast: naive/increments broadcast costs P-1 per update).
        assert counts[32] == counts[8]

    def test_decision_candidates_are_neighbors(self):
        sim, net, procs = neighborhood_world(8)
        init(procs)
        assert procs[0].mechanism.decision_candidates() == [1, 7]
        assert procs[3].mechanism.decision_candidates() == [2, 4]

    def test_reservation_ledger_absorbs_arrival(self):
        sim, net, procs = neighborhood_world(4, threshold=5.0)
        init(procs)
        m0, m1 = procs[0].mechanism, procs[1].mechanism
        m0.record_decision({1: Load(30.0, 6.0)})
        m0.decision_complete()
        sim.run()
        # The reservation raised the slave's advertised load...
        assert m1._my_load == Load(30.0, 6.0)
        before = net.stats.by_type["neighbor_load"]
        # ...so the physical arrival consumes the ledger: no re-publish.
        m1.on_local_change(Load(30.0, 6.0), slave_task=True)
        sim.run()
        assert m1._my_load == Load(30.0, 6.0)
        assert net.stats.by_type["neighbor_load"] == before

    def test_lost_reservation_self_heals(self):
        sim, net, procs = neighborhood_world(4)
        init(procs)
        m1 = procs[1].mechanism
        # The master_to_slave never arrived: the slave's arrival must still
        # be accounted (excess over the empty ledger goes the normal path).
        m1.on_local_change(Load(30.0, 6.0), slave_task=True)
        sim.run()
        assert m1._my_load == Load(30.0, 6.0)
        assert procs[2].mechanism.view.get(1).workload == 30.0

    def test_stale_version_ignored(self):
        sim, net, procs = neighborhood_world(4)
        init(procs)
        m1 = procs[1].mechanism
        m1._seen_version[0] = 99
        procs[0].mechanism.on_local_change(Load(40.0, 0.0))
        sim.run()
        assert m1.view.get(0).workload == 0.0


class TestNeighborhoodInSolver:
    @pytest.fixture(scope="class")
    def tree(self):
        return analyze_matrix(gen.grid_laplacian((12, 12, 4)), name="nbrgrid")

    def test_factorization_completes_and_validates(self, tree):
        from repro.solver import validate_result

        r = run_factorization(tree, 8, mechanism="neighborhood")
        assert r.factorization_time > 0
        assert validate_result(r, tree).ok

    @pytest.mark.parametrize("topology", ["ring", "kreg", "hypercube"])
    def test_alternative_topologies(self, tree, topology):
        cfg = SolverConfig(topology=topology)
        r = run_factorization(tree, 8, mechanism="neighborhood", config=cfg)
        assert r.factorization_time > 0

    def test_same_seed_identical_results(self, tree):
        cfg = SolverConfig(topology="kreg", seed=5)
        a = run_factorization(tree, 8, mechanism="neighborhood", config=cfg)
        b = run_factorization(tree, 8, mechanism="neighborhood", config=cfg)
        assert a.factorization_time == b.factorization_time
        assert a.state_messages == b.state_messages
        assert a.messages_by_type == b.messages_by_type

    def test_metrics_families(self, tree):
        r = run_factorization(
            tree, 8, mechanism="neighborhood", config=SolverConfig(metrics=True)
        )
        fams = r.metrics["families"]
        assert "fanout_messages_total" in fams
        assert "view_staleness_seconds" in fams


class TestNeighborhoodChaos:
    def test_completes_under_20pct_state_loss(self):
        from repro.solver import validate_result

        tree = analyze_matrix(gen.grid_laplacian((10, 10, 4)), name="nbrchaos")
        cfg = SolverConfig(
            fault_plan=FaultPlan.uniform_loss(0.20),
            resilience=True,
        )
        r = run_factorization(tree, 8, mechanism="neighborhood", config=cfg)
        assert (r.fault_stats or {}).get("dropped", 0) > 0
        assert validate_result(r, tree).ok
