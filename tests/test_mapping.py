"""Tests for the static mapping: layer L0, node types, master placement."""

import numpy as np
import pytest

from repro.mapping import (
    NodeType,
    TypeParams,
    build_layer0,
    compute_mapping,
    count_decisions,
    find_layer0,
)
from repro.matrices import collection, generators as gen
from repro.symbolic import analyze_matrix, analyze_problem


@pytest.fixture(scope="module")
def tree():
    return analyze_matrix(gen.grid_laplacian((14, 14, 6)), name="grid")


class TestLayer0:
    def test_roots_are_subtree_roots(self, tree):
        roots = find_layer0(tree, 8)
        # No selected root is a descendant of another
        selected = set(roots)
        for r in roots:
            for fid in tree.subtree_nodes(r):
                if fid != r:
                    assert fid not in selected

    def test_covers_all_leaves(self, tree):
        l0 = build_layer0(tree, 8)
        leaves = {f.id for f in tree if f.is_leaf}
        covered = set(l0.owner)
        assert leaves <= covered

    def test_partition_above_vs_owned(self, tree):
        l0 = build_layer0(tree, 8)
        assert set(l0.above) | set(l0.owner) == {f.id for f in tree}
        assert not (set(l0.above) & set(l0.owner))

    def test_more_procs_means_deeper_layer(self, tree):
        n4 = len(find_layer0(tree, 4))
        n32 = len(find_layer0(tree, 32))
        assert n32 >= n4

    def test_single_proc_keeps_whole_tree(self, tree):
        l0 = build_layer0(tree, 1)
        assert set(l0.roots) == set(tree.roots)
        assert not l0.above

    def test_lpt_balance_reasonable(self, tree):
        l0 = build_layer0(tree, 8)
        assert l0.load.max() > 0
        # LPT guarantee: max ≤ (4/3) OPT ≤ (4/3)(total/8 + biggest subtree)
        w = tree.subtree_flops()
        biggest = max(w[r] for r in l0.roots)
        bound = 4 / 3 * (w.sum() / 8) + biggest
        assert l0.load.max() <= bound

    def test_initial_load_sums_to_subtree_flops(self, tree):
        l0 = build_layer0(tree, 8)
        w = tree.subtree_flops()
        assert l0.load.sum() == pytest.approx(sum(w[r] for r in l0.roots))


class TestNodeTypes:
    def test_every_front_typed(self, tree):
        m = compute_mapping(tree, 8)
        assert set(m.node_type) == {f.id for f in tree}

    def test_subtree_fronts_typed_subtree(self, tree):
        m = compute_mapping(tree, 8)
        for fid in m.layer0.owner:
            assert m.node_type[fid] is NodeType.SUBTREE

    def test_at_most_one_type3(self, tree):
        m = compute_mapping(tree, 8)
        n3 = sum(1 for t in m.node_type.values() if t is NodeType.TYPE3)
        assert n3 <= 1

    def test_root_is_type3_on_enough_procs(self, tree):
        m = compute_mapping(tree, 8)
        root = max(tree.roots, key=lambda r: tree[r].nfront)
        if tree[root].nfront >= 128:
            assert m.node_type[root] is NodeType.TYPE3

    def test_no_type3_on_few_procs(self, tree):
        m = compute_mapping(tree, 2)
        assert all(t is not NodeType.TYPE3 for t in m.node_type.values())

    def test_type2_requires_large_border(self, tree):
        m = compute_mapping(tree, 8)
        for fid, t in m.node_type.items():
            if t is NodeType.TYPE2:
                assert tree[fid].border >= m.tree[fid].border  # tautology guard
                assert tree[fid].border >= TypeParams().min_border_type2

    def test_decisions_grow_with_procs(self, tree):
        d = [compute_mapping(tree, p).n_decisions for p in (4, 16, 64)]
        assert d[0] <= d[1] <= d[2]

    def test_decision_count_matches_histogram(self, tree):
        m = compute_mapping(tree, 16)
        assert m.n_decisions == count_decisions(m.node_type)


class TestMasters:
    def test_every_front_has_master(self, tree):
        m = compute_mapping(tree, 8)
        assert set(m.master) == {f.id for f in tree}
        for rank in m.master.values():
            assert 0 <= rank < 8

    def test_subtree_masters_are_owners(self, tree):
        m = compute_mapping(tree, 8)
        for fid, owner in m.layer0.owner.items():
            assert m.master[fid] == owner

    def test_factor_memory_balanced(self, tree):
        """The greedy mapping should beat a single-rank assignment by far."""
        m = compute_mapping(tree, 8)
        mem = np.zeros(8)
        for fid, rank in m.master.items():
            f = tree[fid]
            if m.node_type[fid] is NodeType.TYPE2:
                mem[rank] += f.master_entries
            else:
                mem[rank] += f.factor_entries
        assert mem.max() < 0.8 * mem.sum()

    def test_type2_master_counts(self, tree):
        m = compute_mapping(tree, 8)
        assert m.type2_master_counts.sum() == m.n_decisions

    def test_static_masters_subset_of_ranks(self, tree):
        m = compute_mapping(tree, 8)
        for r in m.static_masters():
            assert m.type2_master_counts[r] > 0


class TestMappingDriver:
    def test_invalid_nprocs(self, tree):
        with pytest.raises(ValueError):
            compute_mapping(tree, 0)

    def test_summary_counts(self, tree):
        m = compute_mapping(tree, 8)
        s = m.summary()
        assert "decisions" in s and "subtrees" in s

    def test_gupta3_has_few_decisions(self):
        tree = analyze_problem(collection.get("GUPTA3"))
        d64 = compute_mapping(tree, 64).n_decisions
        assert d64 <= 20, "GUPTA3's bushy tree must yield few dynamic decisions"

    def test_deterministic(self, tree):
        a = compute_mapping(tree, 8)
        b = compute_mapping(tree, 8)
        assert a.master == b.master and a.node_type == b.node_type
