"""Property-based "chaos" tests of the snapshot protocol.

Hypothesis generates random scenarios — process counts, decision requests
at random times from random ranks, random link latencies — and the tests
check the protocol's two contracts under every interleaving:

* **liveness**: every requested decision eventually completes and every
  process ends unblocked;
* **sequential coherence** (the paper's motivation for sequentializing
  concurrent snapshots): when a decision's view is delivered, it accounts
  for the reservations of *every* decision that completed before it, and
  the final self-estimates equal the exact sum of reservations received.

The ``*UnderFaults`` classes re-run the same scenarios through a random
:class:`repro.faults.FaultPlan` (message loss / duplication / delay, and
fail-stop crashes) with the resilience layer on, and assert that liveness
and conservation survive, and that maintained views converge back to the
truth once the faults stop (bounded staleness).
"""

from typing import Dict, List

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import CrashFault, FaultInjector, FaultPlan, ScriptedFault
from repro.mechanisms import (
    IncrementsMechanism,
    Load,
    MechanismConfig,
    PartialSnapshotMechanism,
    SnapshotMechanism,
)
from repro.simcore import NetworkConfig
from repro.simcore.network import Channel

from helpers import make_world


class ChaosDriver:
    """Queues decision intents per rank and replays them when unblocked."""

    def __init__(self, sim, procs, slave_of, amount_of):
        self.sim = sim
        self.procs = procs
        self.pending: Dict[int, List[int]] = {}
        self.slave_of = slave_of
        self.amount_of = amount_of
        #: (initiator, view, completion_index) in completion order
        self.completed: List[tuple] = []
        #: reservations applied, in completion order: list of (slave, amount)
        self.log: List[tuple] = []

    def want(self, rank: int, decision_id: int):
        self.pending.setdefault(rank, []).append(decision_id)
        self._try(rank)

    def _try(self, rank: int):
        proc = self.procs[rank]
        mech = proc.mechanism
        if getattr(proc, "crashed", False):
            # a fail-stopped rank abandons its intents (it is silent forever)
            self.pending.pop(rank, None)
            return
        if not self.pending.get(rank):
            return
        if mech.blocks_tasks() or mech._pending_callback is not None:
            # blocked: poll again shortly (emulates Algorithm 1's task loop)
            self.sim.schedule(5e-6, lambda: self._try(rank))
            return
        did = self.pending[rank].pop(0)
        slave = self.slave_of(rank, did)
        amount = self.amount_of(did)

        def cb(view):
            self.completed.append((rank, view, len(self.log)))
            mech.record_decision({slave: Load(float(amount), 0.0)})
            self.log.append((slave, float(amount)))
            mech.decision_complete()
            self.sim.schedule(1e-6, lambda: self._try(rank))

        mech.request_view(cb)


def run_chaos(nprocs, decisions, latency, mech_cls=SnapshotMechanism,
              group_size=0, fault_plan=None, resilience=False):
    cfg = MechanismConfig(snapshot_group_size=group_size, resilience=resilience)
    sim, net, procs = make_world(
        nprocs, lambda: mech_cls(cfg),
        config=NetworkConfig(latency=latency),
    )
    if fault_plan is not None and not fault_plan.is_empty():
        injector = FaultInjector(sim, fault_plan)
        net.install_injector(injector)
        injector.install_process_faults(procs)
    for p in procs:
        p.mechanism.initialize_view([Load.ZERO] * nprocs)
    driver = ChaosDriver(
        sim, procs,
        slave_of=lambda rank, did: (rank + 1 + did % (nprocs - 1)) % nprocs,
        amount_of=lambda did: 10.0 * (did + 1),
    )
    for i, (rank, delay) in enumerate(decisions):
        sim.schedule(delay, lambda r=rank % nprocs, i=i: driver.want(r, i))
    sim.run()
    return sim, net, procs, driver


decision_lists = st.lists(
    st.tuples(st.integers(0, 6), st.floats(0, 1e-3)),
    min_size=1, max_size=8,
)


class TestFullSnapshotChaos:
    @given(
        nprocs=st.integers(3, 7),
        decisions=decision_lists,
        latency=st.sampled_from([1e-6, 5e-5, 2e-3]),
    )
    @settings(max_examples=60, deadline=None)
    def test_liveness_and_coherence(self, nprocs, decisions, latency):
        sim, net, procs, driver = run_chaos(nprocs, decisions, latency)
        # liveness: every decision completed, everyone unblocked
        assert len(driver.completed) == len(decisions)
        for p in procs:
            assert not p.mechanism.blocks_tasks(), p.mechanism.debug_state()
        # sequential coherence: decision k's view contains exactly the
        # reservations of the k decisions completed before it (for every
        # rank other than the initiator, whose own load the view also has).
        for initiator, view, k in driver.completed:
            expected = [0.0] * nprocs
            for slave, amount in driver.log[:k]:
                expected[slave] += amount
            for r in range(nprocs):
                assert view.get(r).workload == pytest.approx(expected[r]), (
                    f"decision #{k} by P{initiator}: view of P{r} is "
                    f"{view.get(r).workload}, expected {expected[r]}"
                )
        # conservation: final self-estimates equal the reservation sums
        final = [0.0] * nprocs
        for slave, amount in driver.log:
            final[slave] += amount
        for p in procs:
            assert p.mechanism.my_load.workload == pytest.approx(final[p.rank])

    @given(decisions=decision_lists)
    @settings(max_examples=20, deadline=None)
    def test_deterministic_message_counts(self, decisions):
        a = run_chaos(5, decisions, 5e-5)[1].stats.sent_total
        b = run_chaos(5, decisions, 5e-5)[1].stats.sent_total
        assert a == b


class TestPartialSnapshotChaos:
    @given(
        nprocs=st.integers(4, 8),
        decisions=decision_lists,
        group_size=st.integers(2, 4),
        latency=st.sampled_from([1e-6, 1e-4]),
    )
    @settings(max_examples=60, deadline=None)
    def test_liveness_and_final_accounting(self, nprocs, decisions,
                                           group_size, latency):
        """Partial snapshots: liveness + exact final accounting.

        (The per-decision view check is weaker here by design: only
        overlapping groups are mutually ordered.)
        """
        sim, net, procs, driver = run_chaos(
            nprocs, decisions, latency,
            mech_cls=PartialSnapshotMechanism, group_size=group_size,
        )
        assert len(driver.completed) == len(decisions)
        for p in procs:
            assert not p.mechanism.blocks_tasks(), p.mechanism.debug_state()
        final = [0.0] * nprocs
        for slave, amount in driver.log:
            final[slave] += amount
        for p in procs:
            assert p.mechanism.my_load.workload == pytest.approx(final[p.rank])


# --------------------------------------------------------------------------
# Chaos under injected faults (resilience layer on)
# --------------------------------------------------------------------------

#: Random message-fault plans on the STATE channel.  Rates are kept in a
#: range the resilience layer is specified for: losing ~1 message in 7 is
#: already far harsher than any real interconnect.
fault_plans = st.builds(
    FaultPlan.chaos,
    drop=st.floats(0.0, 0.15),
    dup=st.floats(0.0, 0.10),
    delay_prob=st.floats(0.0, 0.10),
    delay=st.sampled_from([1e-4, 5e-4]),
    seed_salt=st.integers(0, 3),
)


def _resilience_total(procs, key):
    return sum(p.mechanism.resilience_stats[key] for p in procs)


class TestSnapshotChaosUnderFaults:
    @given(
        nprocs=st.integers(3, 6),
        decisions=decision_lists,
        plan=fault_plans,
        mech=st.sampled_from(["full", "partial"]),
    )
    @settings(max_examples=50, deadline=None)
    def test_liveness_and_conservation_under_loss(self, nprocs, decisions,
                                                  plan, mech):
        """Drop/duplicate/delay chaos: every decision still completes, every
        process ends unblocked, and acked+deduplicated reservations keep the
        final accounting *exact* despite the unreliable channel."""
        mech_cls = SnapshotMechanism if mech == "full" else PartialSnapshotMechanism
        group = 0 if mech == "full" else max(2, nprocs - 2)
        sim, net, procs, driver = run_chaos(
            nprocs, decisions, 5e-5, mech_cls=mech_cls, group_size=group,
            fault_plan=plan, resilience=True,
        )
        assert len(driver.completed) == len(decisions)
        for p in procs:
            assert not p.mechanism.blocks_tasks(), p.mechanism.debug_state()
        # nothing was (or should ever be, at these rates) given up on
        assert _resilience_total(procs, "reservations_abandoned") == 0
        assert _resilience_total(procs, "suspected_dead") == 0
        final = [0.0] * nprocs
        for slave, amount in driver.log:
            final[slave] += amount
        for p in procs:
            assert p.mechanism.my_load.workload == pytest.approx(final[p.rank])

    @given(decisions=decision_lists, plan=fault_plans)
    @settings(max_examples=15, deadline=None)
    def test_faulty_runs_are_deterministic(self, decisions, plan):
        """Same seed + same plan => identical faults and identical traffic."""
        runs = []
        for _ in range(2):
            sim, net, procs, driver = run_chaos(
                5, decisions, 5e-5, fault_plan=plan, resilience=True,
            )
            inj = net.injector
            runs.append((
                net.stats.sent_total,
                None if inj is None else
                (inj.stats.dropped, inj.stats.duplicated, inj.stats.delayed),
                [(r, k) for r, _, k in driver.completed],
            ))
        assert runs[0] == runs[1]

    @given(
        nprocs=st.integers(4, 6),
        decisions=decision_lists,
        crash_time=st.floats(1e-5, 2e-3),
        plan=fault_plans,
    )
    @settings(max_examples=25, deadline=None)
    def test_failstop_crash_liveness(self, nprocs, decisions, crash_time,
                                     plan):
        """Fail-stop chaos: the highest rank crashes at a random time (on top
        of random message faults).  The survivors suspect it, exclude it from
        gathers and elections, and every decision by a survivor completes.

        Reservations assigned to the dead rank are retransmitted and finally
        abandoned; the survivors' own accounting stays exact.
        """
        victim = nprocs - 1
        plan = FaultPlan(
            link_faults=plan.link_faults,
            crashes=(CrashFault(rank=victim, time=crash_time),),
            seed_salt=plan.seed_salt,
        )
        # decisions come only from ranks that never crash
        decisions = [(rank % (nprocs - 1), delay) for rank, delay in decisions]
        sim, net, procs, driver = run_chaos(
            nprocs, decisions, 5e-5, fault_plan=plan, resilience=True,
        )
        assert net.injector.stats.crashes == 1
        assert len(driver.completed) == len(decisions)
        survivors = [p for p in procs if p.rank != victim]
        for p in survivors:
            assert not p.mechanism.blocks_tasks(), p.mechanism.debug_state()
        final = [0.0] * nprocs
        for slave, amount in driver.log:
            final[slave] += amount
        for p in survivors:
            assert p.mechanism.my_load.workload == pytest.approx(final[p.rank])


class TestIncrementsChaosUnderFaults:
    """Bounded staleness of the maintained view under finite fault bursts.

    Scripted faults hit only the early, chaotic part of the run (their
    ``nth`` is bounded by the number of messages the chaos phase provably
    sends).  A single settle round afterwards must be enough for the
    sequence-gap NACK / resync machinery to repair every view *exactly* —
    staleness is bounded by the fault burst, never cumulative.
    """

    @given(
        nprocs=st.integers(3, 6),
        nchanges=st.integers(4, 10),
        faults=st.lists(
            st.tuples(
                st.integers(1, 8),                      # nth matching message
                st.sampled_from(["drop", "duplicate", "delay"]),
            ),
            min_size=1, max_size=4, unique_by=lambda f: f[0],
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_view_converges_after_fault_burst(self, nprocs, nchanges, faults):
        nchanges = max(nchanges, 2)  # chaos phase must outnumber every nth
        assert nchanges * (nprocs - 1) >= max(n for n, _ in faults)
        cfg = MechanismConfig(
            threshold=Load(0.5, 0.5), resilience=True, refresh_every=0,
        )
        plan = FaultPlan(scripted=tuple(
            ScriptedFault(nth=n, action=a, channel=Channel.STATE, delay=2e-4)
            for n, a in faults
        ))
        sim, net, procs = make_world(
            nprocs, lambda: IncrementsMechanism(cfg),
            config=NetworkConfig(latency=5e-5),
        )
        injector = FaultInjector(sim, plan)
        net.install_injector(injector)
        for p in procs:
            p.mechanism.initialize_view([Load.ZERO] * nprocs)
        truth = [0.0] * nprocs
        # chaos phase: every change exceeds the threshold => broadcasts, so
        # the phase sends at least nchanges * (nprocs - 1) STATE messages and
        # every scripted fault fires before the settle round.
        for i in range(nchanges):
            rank = i % nprocs
            truth[rank] += 1.0 + i
            sim.schedule_at(
                1e-4 * (i + 1),
                lambda r=rank, w=1.0 + i: procs[r].mechanism.on_local_change(
                    Load(w, 0.0)
                ),
            )
        # settle round (network is reliable again): one more broadcast per
        # rank gives every receiver a higher sequence number, so any hole
        # left by a dropped update is detected and NACK-repaired.
        for rank in range(nprocs):
            truth[rank] += 1.0
            sim.schedule_at(
                0.05 + 1e-4 * rank,
                lambda r=rank: procs[r].mechanism.on_local_change(
                    Load(1.0, 0.0)
                ),
            )
        sim.run()
        dropped = injector.stats.dropped
        for p in procs:
            for r in range(nprocs):
                assert p.mechanism.view.get(r).workload == pytest.approx(
                    truth[r]
                ), (
                    f"P{p.rank}'s view of P{r} stale after {dropped} drops: "
                    f"{p.mechanism.view.get(r).workload} != {truth[r]}; "
                    f"stats={dict(p.mechanism.resilience_stats)}"
                )
        if dropped:
            assert _resilience_total(procs, "nacks_sent") > 0
