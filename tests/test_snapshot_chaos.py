"""Property-based "chaos" tests of the snapshot protocol.

Hypothesis generates random scenarios — process counts, decision requests
at random times from random ranks, random link latencies — and the tests
check the protocol's two contracts under every interleaving:

* **liveness**: every requested decision eventually completes and every
  process ends unblocked;
* **sequential coherence** (the paper's motivation for sequentializing
  concurrent snapshots): when a decision's view is delivered, it accounts
  for the reservations of *every* decision that completed before it, and
  the final self-estimates equal the exact sum of reservations received.
"""

from typing import Dict, List

import pytest
from hypothesis import given, settings, strategies as st

from repro.mechanisms import (
    Load,
    MechanismConfig,
    PartialSnapshotMechanism,
    SnapshotMechanism,
)
from repro.simcore import NetworkConfig

from helpers import make_world


class ChaosDriver:
    """Queues decision intents per rank and replays them when unblocked."""

    def __init__(self, sim, procs, slave_of, amount_of):
        self.sim = sim
        self.procs = procs
        self.pending: Dict[int, List[int]] = {}
        self.slave_of = slave_of
        self.amount_of = amount_of
        #: (initiator, view, completion_index) in completion order
        self.completed: List[tuple] = []
        #: reservations applied, in completion order: list of (slave, amount)
        self.log: List[tuple] = []

    def want(self, rank: int, decision_id: int):
        self.pending.setdefault(rank, []).append(decision_id)
        self._try(rank)

    def _try(self, rank: int):
        proc = self.procs[rank]
        mech = proc.mechanism
        if not self.pending.get(rank):
            return
        if mech.blocks_tasks() or mech._pending_callback is not None:
            # blocked: poll again shortly (emulates Algorithm 1's task loop)
            self.sim.schedule(5e-6, lambda: self._try(rank))
            return
        did = self.pending[rank].pop(0)
        slave = self.slave_of(rank, did)
        amount = self.amount_of(did)

        def cb(view):
            self.completed.append((rank, view, len(self.log)))
            mech.record_decision({slave: Load(float(amount), 0.0)})
            self.log.append((slave, float(amount)))
            mech.decision_complete()
            self.sim.schedule(1e-6, lambda: self._try(rank))

        mech.request_view(cb)


def run_chaos(nprocs, decisions, latency, mech_cls=SnapshotMechanism,
              group_size=0):
    cfg = MechanismConfig(snapshot_group_size=group_size)
    sim, net, procs = make_world(
        nprocs, lambda: mech_cls(cfg),
        config=NetworkConfig(latency=latency),
    )
    for p in procs:
        p.mechanism.initialize_view([Load.ZERO] * nprocs)
    driver = ChaosDriver(
        sim, procs,
        slave_of=lambda rank, did: (rank + 1 + did % (nprocs - 1)) % nprocs,
        amount_of=lambda did: 10.0 * (did + 1),
    )
    for i, (rank, delay) in enumerate(decisions):
        sim.schedule(delay, lambda r=rank % nprocs, i=i: driver.want(r, i))
    sim.run()
    return sim, net, procs, driver


decision_lists = st.lists(
    st.tuples(st.integers(0, 6), st.floats(0, 1e-3)),
    min_size=1, max_size=8,
)


class TestFullSnapshotChaos:
    @given(
        nprocs=st.integers(3, 7),
        decisions=decision_lists,
        latency=st.sampled_from([1e-6, 5e-5, 2e-3]),
    )
    @settings(max_examples=60, deadline=None)
    def test_liveness_and_coherence(self, nprocs, decisions, latency):
        sim, net, procs, driver = run_chaos(nprocs, decisions, latency)
        # liveness: every decision completed, everyone unblocked
        assert len(driver.completed) == len(decisions)
        for p in procs:
            assert not p.mechanism.blocks_tasks(), p.mechanism.debug_state()
        # sequential coherence: decision k's view contains exactly the
        # reservations of the k decisions completed before it (for every
        # rank other than the initiator, whose own load the view also has).
        for initiator, view, k in driver.completed:
            expected = [0.0] * nprocs
            for slave, amount in driver.log[:k]:
                expected[slave] += amount
            for r in range(nprocs):
                assert view.get(r).workload == pytest.approx(expected[r]), (
                    f"decision #{k} by P{initiator}: view of P{r} is "
                    f"{view.get(r).workload}, expected {expected[r]}"
                )
        # conservation: final self-estimates equal the reservation sums
        final = [0.0] * nprocs
        for slave, amount in driver.log:
            final[slave] += amount
        for p in procs:
            assert p.mechanism.my_load.workload == pytest.approx(final[p.rank])

    @given(decisions=decision_lists)
    @settings(max_examples=20, deadline=None)
    def test_deterministic_message_counts(self, decisions):
        a = run_chaos(5, decisions, 5e-5)[1].stats.sent_total
        b = run_chaos(5, decisions, 5e-5)[1].stats.sent_total
        assert a == b


class TestPartialSnapshotChaos:
    @given(
        nprocs=st.integers(4, 8),
        decisions=decision_lists,
        group_size=st.integers(2, 4),
        latency=st.sampled_from([1e-6, 1e-4]),
    )
    @settings(max_examples=60, deadline=None)
    def test_liveness_and_final_accounting(self, nprocs, decisions,
                                           group_size, latency):
        """Partial snapshots: liveness + exact final accounting.

        (The per-decision view check is weaker here by design: only
        overlapping groups are mutually ordered.)
        """
        sim, net, procs, driver = run_chaos(
            nprocs, decisions, latency,
            mech_cls=PartialSnapshotMechanism, group_size=group_size,
        )
        assert len(driver.completed) == len(decisions)
        for p in procs:
            assert not p.mechanism.blocks_tasks(), p.mechanism.debug_state()
        final = [0.0] * nprocs
        for slave, amount in driver.log:
            final[slave] += amount
        for p in procs:
            assert p.mechanism.my_load.workload == pytest.approx(final[p.rank])
