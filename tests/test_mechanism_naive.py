"""Unit tests for the naive mechanism (Algorithm 2)."""


from repro.mechanisms import Load, MechanismConfig, NaiveMechanism

from helpers import make_world


def naive_world(nprocs, threshold=Load(10.0, 10.0), **kw):
    factory = lambda: NaiveMechanism(MechanismConfig(threshold=threshold))
    return make_world(nprocs, factory, **kw)


class TestThresholdBroadcast:
    def test_small_variation_not_broadcast(self):
        sim, net, procs = naive_world(3)
        procs[0].mechanism.on_local_change(Load(5.0, 0.0))
        sim.run()
        assert net.stats.by_type.get("update_abs", 0) == 0
        # but the local estimate moved
        assert procs[0].mechanism.my_load.workload == 5.0

    def test_variation_past_threshold_broadcast_absolute(self):
        sim, net, procs = naive_world(3)
        procs[0].mechanism.on_local_change(Load(25.0, 0.0))
        sim.run()
        assert net.stats.by_type["update_abs"] == 2
        for p in procs[1:]:
            assert p.mechanism.view.get(0).workload == 25.0

    def test_accumulated_drift_triggers_once_past_threshold(self):
        sim, net, procs = naive_world(2)
        m = procs[0].mechanism
        m.on_local_change(Load(6.0, 0.0))
        m.on_local_change(Load(6.0, 0.0))  # drift 12 > 10 -> broadcast
        sim.run()
        assert net.stats.by_type["update_abs"] == 1
        assert procs[1].mechanism.view.get(0).workload == 12.0

    def test_last_sent_resets_after_broadcast(self):
        sim, net, procs = naive_world(2)
        m = procs[0].mechanism
        m.on_local_change(Load(12.0, 0.0))  # broadcast (12)
        m.on_local_change(Load(5.0, 0.0))  # drift 5 from 12: silent
        sim.run()
        assert net.stats.by_type["update_abs"] == 1

    def test_memory_metric_triggers_independently(self):
        sim, net, procs = naive_world(2, threshold=Load(100.0, 10.0))
        procs[0].mechanism.on_local_change(Load(1.0, 50.0))
        sim.run()
        assert net.stats.by_type["update_abs"] == 1
        assert procs[1].mechanism.view.get(0).memory == 50.0

    def test_negative_variation_broadcast(self):
        sim, net, procs = naive_world(2)
        procs[0].mechanism.on_local_change(Load(-30.0, 0.0))
        sim.run()
        assert procs[1].mechanism.view.get(0).workload == -30.0


class TestInitialization:
    def test_initial_loads_seed_views_without_messages(self):
        sim, net, procs = naive_world(3)
        loads = [Load(10.0, 1.0), Load(20.0, 2.0), Load(30.0, 3.0)]
        for p in procs:
            p.mechanism.initialize_view(loads)
        sim.run()
        assert net.stats.sent_total == 0
        assert procs[2].mechanism.view.get(0).workload == 10.0
        assert procs[0].mechanism.my_load.workload == 10.0

    def test_no_broadcast_for_drift_below_threshold_from_initial(self):
        sim, net, procs = naive_world(2)
        for p in procs:
            p.mechanism.initialize_view([Load(100.0, 0.0), Load(0.0, 0.0)])
        procs[0].mechanism.on_local_change(Load(5.0, 0.0))
        sim.run()
        assert net.stats.by_type.get("update_abs", 0) == 0


class TestDecisionObliviousness:
    def test_record_decision_sends_nothing(self):
        """Faithful flaw: naive publishes nothing at slave selection."""
        sim, net, procs = naive_world(3)
        procs[0].mechanism.record_decision({1: Load(50.0, 5.0)})
        sim.run()
        assert net.stats.sent_total == 0
        # Even P0's own view of P1 is unchanged.
        assert procs[0].mechanism.view.get(1).workload == 0.0

    def test_request_view_is_synchronous(self):
        sim, net, procs = naive_world(2)
        got = []
        procs[0].mechanism.request_view(got.append)
        assert len(got) == 1

    def test_view_is_a_copy(self):
        sim, net, procs = naive_world(2)
        got = []
        procs[0].mechanism.request_view(got.append)
        got[0].set(1, Load(99.0, 99.0))
        assert procs[0].mechanism.view.get(1).workload == 0.0


class TestNoMoreMaster:
    def test_silenced_rank_receives_no_updates(self):
        sim, net, procs = naive_world(3)
        procs[2].mechanism.declare_no_more_master()
        sim.run()
        assert net.stats.by_type["no_more_master"] == 2
        procs[0].mechanism.on_local_change(Load(100.0, 0.0))
        sim.run()
        # P0 broadcasts only to P1 (P2 silenced itself).
        assert net.stats.by_type["update_abs"] == 1
        assert procs[1].mechanism.view.get(0).workload == 100.0
        assert procs[2].mechanism.view.get(0).workload == 0.0

    def test_declare_is_idempotent(self):
        sim, net, procs = naive_world(3)
        procs[0].mechanism.declare_no_more_master()
        procs[0].mechanism.declare_no_more_master()
        sim.run()
        assert net.stats.by_type["no_more_master"] == 2

    def test_optimization_can_be_disabled(self):
        cfg = MechanismConfig(threshold=Load(10, 10), no_more_master=False)
        sim, net, procs = make_world(2, lambda: NaiveMechanism(cfg))
        procs[0].mechanism.declare_no_more_master()
        sim.run()
        assert net.stats.sent_total == 0


class TestFigure1Scenario:
    """The paper's Figure 1: P2 is chosen twice on stale information.

    P2 starts a costly task at t1; P0 then selects P2 as a slave (t2) and P1
    selects P2 shortly after (t3).  Because P2 is computing, it cannot treat
    the incoming work nor broadcast its new load before t4 (task end), so at
    t3 P1's view of P2 is identical to P0's — the double selection the naive
    mechanism cannot avoid.
    """

    def test_second_master_sees_stale_view_of_p2(self):
        sim, net, procs = naive_world(3, threshold=Load(1.0, 1.0))
        for p in procs:
            p.mechanism.initialize_view([Load.ZERO] * 3)
        p0, p1, p2 = procs

        # t1: P2 begins a costly task.
        def start_costly():
            p2.mechanism.on_local_change(Load(1000.0, 0.0))
            p2.queue_task(10.0, "costly",
                          on_complete=lambda: p2.mechanism.on_local_change(
                              Load(-1000.0, 0.0)))

        sim.schedule(0.0, start_costly)

        views = {}

        def select_at(master, t):
            def do():
                master.mechanism.request_view(
                    lambda v: views.setdefault(master.rank, v))
                master.mechanism.record_decision({2: Load(500.0, 0.0)})
            sim.schedule(t, do)

        select_at(p0, 1.0)  # t2
        select_at(p1, 2.0)  # t3 < t4 = 10.0
        sim.run()
        # P0's broadcast of its 1000-load change reached nobody yet at t=1?
        # It did (latency is microseconds) — but P0's *decision* at t2 is
        # invisible to P1 at t3: both masters saw the same load for P2.
        assert views[0].get(2).workload == views[1].get(2).workload == 1000.0
        # Under increments, P1 would have seen 1500.0 (see increments tests).
