"""Cross-layer consistency: assembly-tree costs vs the true factor pattern.

The fronts' entry counts must be consistent with the symbolic factor they
condense: a front of ``npiv`` pivots and order ``nfront`` stores the dense
factor block ``nfront² − border²`` whose L-part corresponds to the column
counts of its pivot columns.  Amalgamation may only *add* fill (never lose
entries), which gives a two-sided sanity envelope tying `repro.symbolic`'s
two representations together.
"""

import pytest

from repro.matrices import generators as gen
from repro.symbolic.driver import AnalysisParams, analyze_matrix
from repro.symbolic.etree import column_counts, elimination_tree, factor_nnz, postorder
from repro.symbolic.graph import permute_symmetric, symmetrize_pattern
from repro.symbolic.ordering import nested_dissection


def tree_and_nnzL(A, params):
    tree = analyze_matrix(A, name="cons", params=params)
    B = symmetrize_pattern(A)
    perm = nested_dissection(B, leaf_size=params.nd_leaf_size)
    Bp = permute_symmetric(B, perm)
    par = elimination_tree(Bp)
    perm2 = perm[postorder(par)]
    Bp2 = permute_symmetric(B, perm2)
    par2 = elimination_tree(Bp2)
    nnzL = factor_nnz(column_counts(Bp2, par2))
    return tree, nnzL


@pytest.mark.parametrize("shape", [(16, 16), (8, 8, 6)])
def test_front_factor_entries_bound_below_by_factor_pattern(shape):
    """Σ front factors ≥ the unsymmetric factor size 2·nnz(L) − n.

    Fronts store full (L and U) dense blocks; the symbolic pattern counts
    L only, and amalgamation adds fill — so the front total must dominate.
    """
    A = gen.grid_laplacian(shape)
    params = AnalysisParams()
    tree, nnzL = tree_and_nnzL(A, params)
    n = A.shape[0]
    lower_bound = 2 * nnzL - n
    total = tree.total_factor_entries
    assert total >= lower_bound * 0.999


@pytest.mark.parametrize("shape", [(16, 16), (8, 8, 6)])
def test_amalgamation_fill_is_bounded(shape):
    """The relaxed amalgamation must not blow the factor up arbitrarily."""
    A = gen.grid_laplacian(shape)
    params = AnalysisParams()
    tree, nnzL = tree_and_nnzL(A, params)
    n = A.shape[0]
    exact = 2 * nnzL - n
    assert tree.total_factor_entries <= 3.0 * exact, (
        "amalgamation fill exceeded 3x the exact factor size"
    )


def test_finer_amalgamation_less_fill():
    A = gen.grid_laplacian((10, 10, 5))
    coarse = analyze_matrix(A, name="c", params=AnalysisParams(amalg_max_npiv=64))
    fine = analyze_matrix(A, name="f", params=AnalysisParams(amalg_max_npiv=8))
    assert fine.total_factor_entries <= coarse.total_factor_entries * 1.001


def test_flops_dominated_by_large_fronts():
    """Sanity of the paper's premise: most flops sit near the top of the
    tree, where the dynamic (type-2) decisions are taken."""
    A = gen.grid_laplacian((10, 10, 8))
    tree = analyze_matrix(A, name="flopgrid")
    by_size = sorted(tree, key=lambda f: -f.nfront)
    top_fifth = by_size[: max(1, len(by_size) // 5)]
    share = sum(f.flops for f in top_fifth) / tree.total_flops
    assert share > 0.5
