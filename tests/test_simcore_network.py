"""Unit tests for the network model: FIFO links, costs, accounting."""

import pytest

from repro.simcore import Channel, ChannelError, Network, NetworkConfig, Simulator
from repro.simcore.network import Payload

from helpers import HostProcess, make_world


class BigPayload(Payload):
    TYPE = "big"

    def nbytes(self):
        return 1_000_000


class TestDeliveryTiming:
    def test_latency_and_bandwidth(self):
        cfg = NetworkConfig(latency=1e-3, bandwidth=1e6, send_overhead=0.0)
        sim, net, procs = make_world(2, config=cfg)
        net.send(0, 1, Channel.DATA, BigPayload())
        sim.run()
        env = procs[1].data_received[0]
        assert env.deliver_time == pytest.approx(1e-3 + 1.0)

    def test_fifo_per_link(self):
        # A small message sent right after a big one on the same link must
        # not overtake it.
        cfg = NetworkConfig(latency=0.0, bandwidth=1e6, send_overhead=0.0)
        sim, net, procs = make_world(2, config=cfg)
        net.send(0, 1, Channel.DATA, BigPayload())  # 1s transfer
        net.send(0, 1, Channel.DATA, Payload())  # tiny
        sim.run()
        times = [e.deliver_time for e in procs[1].data_received]
        assert times == sorted(times)
        assert times[1] >= 1.0

    def test_channels_are_independent(self):
        # STATE messages are not delayed behind a big DATA transfer.
        cfg = NetworkConfig(latency=0.0, bandwidth=1e6, send_overhead=0.0)
        sim, net, procs = make_world(2, config=cfg)

        class StateNote(Payload):
            TYPE = "note"

        received = []
        procs[1].handle_state = lambda env: received.append(sim.now)
        net.send(0, 1, Channel.DATA, BigPayload())
        net.send(0, 1, Channel.STATE, StateNote())
        sim.run()
        assert received and received[0] < 1.0

    def test_sender_charged_overhead(self):
        cfg = NetworkConfig(send_overhead=5e-6)
        sim, net, procs = make_world(3, config=cfg)
        net.broadcast(0, Channel.DATA, Payload())
        assert procs[0].cpu_free_at == pytest.approx(2 * 5e-6)


class TestRoutingErrors:
    def test_self_send_rejected(self):
        sim, net, procs = make_world(2)
        with pytest.raises(ChannelError):
            net.send(0, 0, Channel.DATA, Payload())

    def test_bad_destination_rejected(self):
        sim, net, procs = make_world(2)
        with pytest.raises(ChannelError):
            net.send(0, 5, Channel.DATA, Payload())

    def test_double_registration_rejected(self):
        sim = Simulator()
        net = Network(sim, 1)
        HostProcess(sim, net, 0)
        with pytest.raises(ChannelError):
            HostProcess(sim, net, 0)

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            Network(Simulator(), 0)


class TestAccounting:
    def test_message_counts_by_type_and_channel(self):
        sim, net, procs = make_world(4)
        procs[2].handle_state = lambda env: None
        net.broadcast(0, Channel.DATA, Payload())
        net.send(1, 2, Channel.STATE, BigPayload())
        sim.run()
        assert net.stats.sent_total == 4
        assert net.stats.by_type["payload"] == 3
        assert net.stats.by_type["big"] == 1
        assert net.stats.by_channel["DATA"] == 3
        assert net.stats.state_message_count() == 1
        assert net.stats.sent_bytes == 3 * 64 + 1_000_000

    def test_broadcast_exclude(self):
        sim, net, procs = make_world(4)
        n = net.broadcast(0, Channel.DATA, Payload(), exclude=[2])
        assert n == 2
        sim.run()
        assert len(procs[1].data_received) == 1
        assert len(procs[2].data_received) == 0
        assert len(procs[3].data_received) == 1
