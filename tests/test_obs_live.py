"""Live metrics streaming tests (repro.obs.live).

Covers the three layers separately — store semantics, HTTP/SSE server,
run publisher — plus the end-to-end contracts: a DES run with a live
publisher attached produces byte-identical results, and the asyncio
socket backend (opt-in ``-m backend``) publishes real-wall-clock
snapshots while a replay executes.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.matrices import generators as gen
from repro.obs import MetricsRegistry
from repro.obs.live import (
    LiveMetricsServer,
    LiveMetricsStore,
    LiveRunPublisher,
    serve_paths,
)
from repro.solver.driver import SolverConfig, run_factorization
from repro.symbolic import analyze_matrix


def fetch(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode("utf-8")


@pytest.fixture(scope="module")
def tree():
    return analyze_matrix(gen.grid_laplacian((10, 10, 4)), name="livegrid")


class TestLiveMetricsStore:
    def test_publish_bumps_seq_and_snapshot_orders(self):
        store = LiveMetricsStore()
        assert store.seq == 0 and not store.closed
        store.publish("b", {"x": 1})
        store.publish("a", {"x": 2})
        seq, entries = store.snapshot()
        assert seq == 2
        # first-publish order, not sorted
        assert [label for label, _ in entries] == ["b", "a"]

    def test_identical_republish_is_a_noop(self):
        store = LiveMetricsStore()
        store.publish("run", {"v": 1})
        store.publish("run", {"v": 1})  # same export: no bump, no wakeup
        assert store.seq == 1
        store.publish("run", {"v": 2})
        assert store.seq == 2

    def test_wait_changed_times_out(self):
        store = LiveMetricsStore()
        store.publish("run", {})
        assert store.wait_changed(store.seq, timeout=0.01) == store.seq

    def test_wait_changed_wakes_on_publish(self):
        store = LiveMetricsStore()
        got = []

        def waiter():
            got.append(store.wait_changed(0, timeout=5.0))

        t = threading.Thread(target=waiter)
        t.start()
        store.publish("run", {"v": 1})
        t.join(timeout=5.0)
        assert got == [1]

    def test_close_wakes_waiters(self):
        store = LiveMetricsStore()
        got = []

        def waiter():
            got.append(store.wait_changed(0, timeout=5.0))

        t = threading.Thread(target=waiter)
        t.start()
        store.close()
        t.join(timeout=5.0)
        assert got == [0] and store.closed


@pytest.fixture()
def server():
    srv = LiveMetricsServer(port=0).start()  # port 0: ephemeral bind
    yield srv
    srv.stop()


class TestLiveMetricsServer:
    def _publish_sample(self, store):
        reg = MetricsRegistry()
        reg.counter("messages_sent_total", {"type": "mload"},
                    help="sent").inc(3)
        store.publish("r1", reg.to_dict())

    def test_healthz_and_root(self, server):
        assert fetch(server.url("/healthz")) == (200, "ok\n")
        assert fetch(server.url("/")) == (200, "ok\n")

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as ei:
            fetch(server.url("/nope"))
        assert ei.value.code == 404

    def test_metrics_scrape_prometheus_text(self, server):
        self._publish_sample(server.store)
        status, body = fetch(server.url("/metrics"))
        assert status == 200
        assert "# TYPE repro_messages_sent_total counter" in body
        assert 'run="r1"' in body and 'type="mload"' in body

    def test_metrics_json_document(self, server):
        self._publish_sample(server.store)
        status, body = fetch(server.url("/metrics.json"))
        doc = json.loads(body)
        assert doc["seq"] == server.store.seq
        assert doc["runs"]["r1"]["schema"] == 1

    def test_sse_first_frame_carries_current_state(self, server):
        self._publish_sample(server.store)
        req = urllib.request.urlopen(server.url("/events"), timeout=5.0)
        try:
            assert req.headers["Content-Type"] == "text/event-stream"
            assert req.readline() == b"event: metrics\n"
            data = req.readline()
            assert data.startswith(b"data: ")
            doc = json.loads(data[len(b"data: "):])
            assert "r1" in doc["runs"]
        finally:
            req.close()

    def test_sse_end_event_on_close(self, server):
        req = urllib.request.urlopen(server.url("/events"), timeout=5.0)
        try:
            # drain the initial (empty-store) frame first
            assert req.readline() == b"event: metrics\n"
            req.readline()  # data: {...}
            req.readline()  # blank separator
            server.store.close()
            assert req.readline() == b"event: end\n"
        finally:
            req.close()


class _StubMonitor:
    """Just the surface LiveRunPublisher touches on MetricsMonitor."""

    def __init__(self):
        self.on_tick = None
        self.flushes = 0

    def flush(self):
        self.flushes += 1


class TestLiveRunPublisher:
    def test_attach_tick_publish_finish(self):
        store = LiveMetricsStore()
        pub = LiveRunPublisher(store, interval=0.0)
        reg = MetricsRegistry()
        c = reg.counter("decisions_total", {}, help="d")
        mon = _StubMonitor()

        pub.attach("run A", reg, mon)
        assert mon.on_tick is not None
        mon.on_tick()  # first tick publishes immediately
        assert mon.flushes == 1
        seq, entries = store.snapshot()
        assert seq == 1 and entries[0][0] == "run A"

        c.inc()
        mon.on_tick()
        assert store.seq == 2

        pub.finish()  # publishes final export, detaches
        assert mon.on_tick is None
        # final export equals the last published one → dedupe, no bump
        assert store.seq == 2

    def test_interval_paces_wall_clock(self):
        store = LiveMetricsStore()
        pub = LiveRunPublisher(store, interval=3600.0)
        reg = MetricsRegistry()
        c = reg.counter("decisions_total", {}, help="d")
        mon = _StubMonitor()
        pub.attach("run", reg, mon)
        mon.on_tick()
        c.inc()
        mon.on_tick()  # inside the interval: suppressed
        assert store.seq == 1 and mon.flushes == 1
        pub.detach()

    def test_publish_export_for_cache_hits(self):
        store = LiveMetricsStore()
        pub = LiveRunPublisher(store)
        pub.publish_export("cached", {"schema": 1, "families": {}})
        assert dict(store.snapshot()[1])["cached"]["schema"] == 1


class TestLiveDesRun:
    def test_results_identical_and_snapshots_published(self, tree):
        plain = run_factorization(tree, 4, "increments", "workload",
                                  SolverConfig(metrics=True))
        store = LiveMetricsStore()
        pub = LiveRunPublisher(store, interval=0.0)
        live = run_factorization(tree, 4, "increments", "workload",
                                 SolverConfig(metrics=True), live=pub)
        # publishing is a pure read: identical results and export
        assert live.factorization_time == plain.factorization_time
        assert live.decisions == plain.decisions
        assert live.messages_by_type == plain.messages_by_type
        assert live.metrics == plain.metrics
        # interval=0 → every engine sample published; final export last
        seq, entries = store.snapshot()
        assert seq >= 1
        ((label, export),) = entries
        assert "increments/workload" in label and "P=4" in label
        assert export == live.metrics

    def test_live_ignored_without_metrics(self, tree):
        store = LiveMetricsStore()
        pub = LiveRunPublisher(store, interval=0.0)
        r = run_factorization(tree, 4, "increments", "workload",
                              SolverConfig(), live=pub)
        assert r.metrics is None
        assert store.snapshot() == (0, [])

    def test_scrape_during_run_window(self, tree):
        # The server can be scraped while a run's snapshots arrive; here we
        # scrape right after the run (same store) — the endpoint must serve
        # whatever the publisher last wrote.
        store = LiveMetricsStore()
        server = LiveMetricsServer(store, port=0).start()
        try:
            pub = LiveRunPublisher(store, interval=0.0)
            run_factorization(tree, 4, "increments", "workload",
                              SolverConfig(metrics=True), live=pub)
            _, body = fetch(server.url("/metrics"))
            assert "# TYPE repro_messages_sent_total counter" in body
            assert "repro_factorization_seconds" in body
        finally:
            server.stop()


class TestServePaths:
    def test_serves_metrics_dir_and_stops(self, tmp_path, tree):
        r = run_factorization(tree, 4, "increments", "workload",
                              SolverConfig(metrics=True))
        doc = {"run": {"problem": "livegrid", "nprocs": 4,
                       "mechanism": "increments", "strategy": "workload"},
               "metrics": r.metrics}
        (tmp_path / "run.json").write_text(json.dumps(doc), encoding="utf-8")
        # mid-write garbage must be tolerated, not fatal
        (tmp_path / "partial.json").write_text("{not json", encoding="utf-8")

        server = serve_paths([tmp_path], port=0, interval=0.01,
                             max_seconds=0.05)
        # returned server is already stopped; the store keeps the last scan
        _, entries = server.store.snapshot()
        assert [label for label, _ in entries] == \
            ["livegrid P=4 increments/workload"]

    def test_missing_paths_are_skipped(self, tmp_path):
        server = serve_paths([tmp_path / "nothing"], port=0,
                             interval=0.01, max_seconds=0.02)
        assert server.store.snapshot()[1] == []


class TestCliValidation:
    def test_serve_rejects_out_of_range_port(self, capsys):
        from repro.obs.__main__ import main

        with pytest.raises(SystemExit) as ei:
            main(["serve", ".", "--port", "99999"])
        assert ei.value.code == 2
        assert "--port" in capsys.readouterr().err

    def test_experiments_rejects_bad_live_port(self, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit) as ei:
            main(["table5", "--fast", "--live-metrics", "-1"])
        assert ei.value.code == 2
        assert "--live-metrics" in capsys.readouterr().err

    def test_experiments_rejects_negative_linger(self, capsys):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit) as ei:
            main(["table5", "--fast", "--live-linger", "-5"])
        assert ei.value.code == 2
        assert "--live-linger" in capsys.readouterr().err


@pytest.mark.backend
class TestAsyncioLive:
    def test_socket_replay_publishes_snapshots(self, tree):
        from repro.backends import ScriptRecorder, create_backend
        from repro.backends.asyncio_net import AsyncioBackend

        rec = ScriptRecorder()
        run_factorization(tree, 4, mechanism="increments",
                          config=SolverConfig(seed=0), recorder=rec)
        script = rec.script()
        des = create_backend("des").execute(script)

        store = LiveMetricsStore()
        server = LiveMetricsServer(store, port=0).start()
        try:
            backend = AsyncioBackend(live=store, live_interval=0.05)
            net = backend.execute(script)
            assert net.decisions == des.decisions
            # the final post-run snapshot is always published
            seq, entries = store.snapshot()
            assert seq >= 1
            ((label, export),) = entries
            assert label.startswith("asyncio increments")
            sent = export["families"]["messages_sent_total"]["series"]
            assert sum(int(s["value"]) for s in sent) > 0
            _, body = fetch(server.url("/metrics"))
            assert "repro_messages_sent_total" in body
        finally:
            server.stop()
