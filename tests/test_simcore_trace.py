"""Unit tests of :mod:`repro.simcore.trace` (recording, filtering, export).

The export half is new with the fault subsystem: traces round-trip through
JSON and convert to the Chrome trace-event format so lossy runs (``fault``
entries) can be inspected in ``chrome://tracing`` / Perfetto.
"""

import json

import pytest

from repro.simcore.trace import TraceEntry, TraceRecorder


def sample_recorder(**kw):
    rec = TraceRecorder(**kw)
    rec.record(0.0, "task-start", "factor(3)", who=0)
    rec.record(1e-3, "send", "snp:0->1", who=0)
    rec.record(2e-3, "fault", "drop(random):update_abs:1->0@STATE", who=1)
    rec.record(3e-3, "task-end", "factor(3)", who=0)
    rec.record(4e-3, "event", "run-complete")  # engine-level, who == -1
    return rec


class TestRecording:
    def test_append_and_iterate(self):
        rec = sample_recorder()
        assert len(rec) == 5
        assert [e.kind for e in rec] == [
            "task-start", "send", "fault", "task-end", "event",
        ]

    def test_keep_kinds_filters_at_record_time(self):
        rec = TraceRecorder(keep_kinds={"fault"})
        rec.record(0.0, "send", "noise", who=0)
        rec.record(1.0, "fault", "drop", who=0)
        assert [e.kind for e in rec] == ["fault"]

    def test_filter_by_kind_who_predicate(self):
        rec = sample_recorder()
        assert len(rec.filter(kind="fault")) == 1
        assert len(rec.filter(who=0)) == 3
        assert len(rec.filter(kind="send", who=1)) == 0
        late = rec.filter(predicate=lambda e: e.time >= 3e-3)
        assert [e.kind for e in late] == ["task-end", "event"]


class TestJsonRoundTrip:
    def test_round_trip_preserves_entries(self):
        rec = sample_recorder()
        back = TraceRecorder.from_json(rec.to_json())
        assert back.entries == rec.entries

    def test_round_trip_preserves_keep_filter(self):
        rec = TraceRecorder(keep_kinds={"fault", "send"})
        rec.record(0.0, "fault", "drop", who=2)
        back = TraceRecorder.from_json(rec.to_json())
        assert back.entries == rec.entries
        # the rebuilt recorder filters like the original
        back.record(1.0, "task-start", "ignored", who=0)
        assert len(back) == 1

    def test_json_is_plain_data(self):
        doc = json.loads(sample_recorder().to_json(indent=2))
        assert doc["keep_kinds"] is None
        assert doc["entries"][0] == {
            "time": 0.0, "kind": "task-start", "who": 0, "detail": "factor(3)",
        }


class TestChromeTrace:
    def test_task_pairs_become_duration_events(self):
        doc = sample_recorder().to_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        begins = [e for e in doc["traceEvents"] if e["ph"] == "B"]
        ends = [e for e in doc["traceEvents"] if e["ph"] == "E"]
        assert len(begins) == len(ends) == 1
        assert begins[0]["name"] == ends[0]["name"] == "factor(3)"
        assert begins[0]["tid"] == 0
        # simulated seconds -> microsecond timestamps
        assert ends[0]["ts"] == pytest.approx(3e3)

    def test_other_kinds_become_instants(self):
        doc = sample_recorder().to_chrome_trace()
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert {e["cat"] for e in instants} == {"send", "fault", "event"}
        for e in instants:
            assert e["s"] == "t"

    def test_ranks_get_thread_names_and_engine_gets_own_track(self):
        doc = sample_recorder().to_chrome_trace()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {"P0", "P1"}
        engine = [e for e in doc["traceEvents"]
                  if e["ph"] == "i" and e["cat"] == "event"]
        # who == -1 lands past the highest rank instead of colliding with P0
        assert engine[0]["tid"] == 2

    def test_empty_recorder_exports_cleanly(self):
        doc = TraceRecorder().to_chrome_trace()
        assert doc["traceEvents"] == []

    def test_spans_become_duration_events(self):
        rec = TraceRecorder()
        rec.begin_span(1e-3, "treat:update_inc", who=1)
        rec.end_span(2e-3, "treat:update_inc", who=1)
        doc = rec.to_chrome_trace()
        b, e = [ev for ev in doc["traceEvents"] if ev["ph"] != "M"]
        assert (b["ph"], e["ph"]) == ("B", "E")
        assert b["name"] == e["name"] == "treat:update_inc"
        assert b["cat"] == e["cat"] == "span"
        assert b["tid"] == e["tid"] == 1
        assert (b["ts"], e["ts"]) == (pytest.approx(1e3), pytest.approx(2e3))

    def test_timestamps_monotonic_even_when_recorded_out_of_order(self):
        """Span ends are stamped at now+cost, ahead of later records; the
        export must still be sorted (Perfetto rejects ts regressions)."""
        rec = TraceRecorder()
        rec.begin_span(1e-3, "treat:a", who=0)
        rec.end_span(5e-3, "treat:a", who=0)   # future end, recorded early
        rec.record(2e-3, "send", "snp:0->1", who=0)
        rec.begin_span(3e-3, "treat:b", who=1)
        rec.end_span(4e-3, "treat:b", who=1)
        ts = [e["ts"] for e in rec.to_chrome_trace()["traceEvents"]
              if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_sort_is_stable_for_ties(self):
        """Same-timestamp entries keep record order (B before E at a tie)."""
        rec = TraceRecorder()
        rec.begin_span(1e-3, "zero-cost", who=0)
        rec.end_span(1e-3, "zero-cost", who=0)
        phases = [e["ph"] for e in rec.to_chrome_trace()["traceEvents"]]
        assert phases == ["M", "B", "E"]

    def test_span_round_trip_through_json(self):
        rec = TraceRecorder()
        rec.begin_span(1e-3, "snapshot-round", who=2)
        rec.end_span(3e-3, "snapshot-round", who=2)
        back = TraceRecorder.from_json(rec.to_json())
        assert back.entries == rec.entries
        assert back.to_chrome_trace() == rec.to_chrome_trace()

    def test_save_chrome_trace(self, tmp_path):
        path = tmp_path / "run.trace.json"
        sample_recorder().save_chrome_trace(str(path))
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 7  # 2 metadata + 5 entries

    def test_fault_entries_from_a_real_run_export(self):
        """End-to-end: a traced lossy run produces 'fault' instants."""
        from repro.faults import FaultInjector, FaultPlan
        from repro.simcore import NetworkConfig
        from repro.simcore.network import Channel, Payload

        from helpers import make_world

        class Ping(Payload):
            TYPE = "ping"

            def nbytes(self):
                return 8

        sim, net, procs = make_world(2, None, config=NetworkConfig())
        sim.trace = TraceRecorder()
        net.install_injector(
            FaultInjector(sim, FaultPlan.uniform_loss(1.0, channel=None))
        )
        net.send(0, 1, Channel.DATA, Ping())
        sim.run()
        doc = sim.trace.to_chrome_trace()
        faults = [e for e in doc["traceEvents"]
                  if e.get("cat") == "fault"]
        assert faults and faults[0]["name"].startswith("drop(random):ping")


def test_trace_entry_is_frozen():
    e = TraceEntry(0.0, "send", 0, "x")
    with pytest.raises(Exception):
        e.time = 1.0
