"""Tests for the row-blocking kernel and the two dynamic strategies."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mechanisms.view import LoadView
from repro.scheduling import (
    BlockingConstraints,
    MemoryStrategy,
    ScheduleParams,
    WorkloadStrategy,
    create_strategy,
    partition_rows,
    water_level,
)
from repro.symbolic.tree import Front


def make_view(workloads, memories=None):
    v = LoadView(len(workloads))
    v.workload[:] = workloads
    v.memory[:] = memories if memories is not None else 0.0
    return v


class TestWaterLevel:
    def test_equal_levels_split_evenly(self):
        levels = np.zeros(4)
        T = water_level(levels, 1.0, 100, kmax=10**9)
        assert T == pytest.approx(25.0, rel=1e-6)

    def test_levels_reached(self):
        levels = np.array([0.0, 10.0, 50.0])
        T = water_level(levels, 1.0, 30, kmax=10**9)
        filled = np.maximum(T - levels, 0).sum()
        assert filled == pytest.approx(30.0, rel=1e-6)

    def test_kmax_respected(self):
        levels = np.array([0.0, 100.0])
        T = water_level(levels, 1.0, 60, kmax=40)
        fills = np.minimum(np.maximum(T - levels, 0), 40)
        assert fills.sum() == pytest.approx(60, rel=1e-6)


class TestPartitionRows:
    def test_sums_to_nrows(self):
        shares = partition_rows([0.0, 5.0, 20.0], 1.0, 17,
                                BlockingConstraints(kmin=2))
        assert sum(shares) == 17

    def test_least_loaded_gets_most(self):
        shares = partition_rows([0.0, 100.0, 200.0], 1.0, 90,
                                BlockingConstraints(kmin=1))
        assert shares[0] >= shares[1] >= shares[2]

    def test_kmin_enforced(self):
        shares = partition_rows([0.0, 1.0, 2.0, 3.0], 1.0, 40,
                                BlockingConstraints(kmin=8))
        for s in shares:
            assert s == 0 or s >= 8

    def test_kmax_enforced(self):
        shares = partition_rows([0.0, 0.0, 0.0, 0.0], 1.0, 40,
                                BlockingConstraints(kmin=1, kmax=12))
        assert max(shares) <= 12
        assert sum(shares) == 40

    def test_tiny_assignment_goes_to_least_loaded(self):
        shares = partition_rows([50.0, 3.0, 70.0], 1.0, 2,
                                BlockingConstraints(kmin=8))
        assert shares == [0, 2, 0]

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            partition_rows([0.0, 0.0], 1.0, 100, BlockingConstraints(kmin=1, kmax=10))

    def test_empty_candidates_raises(self):
        with pytest.raises(ValueError):
            partition_rows([], 1.0, 10)

    def test_zero_rows(self):
        assert partition_rows([1.0, 2.0], 1.0, 0) == [0, 0]

    @given(
        st.lists(st.floats(0, 1e6), min_size=1, max_size=20),
        st.integers(1, 500),
        st.integers(1, 16),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_sum_and_bounds(self, levels, nrows, kmin):
        kmax = max(kmin, 64)
        if nrows > len(levels) * kmax:
            return
        shares = partition_rows(levels, 3.0, nrows,
                                BlockingConstraints(kmin=kmin, kmax=kmax))
        assert sum(shares) == nrows
        assert all(s >= 0 for s in shares)
        assert all(s <= kmax for s in shares)


FRONT = Front(id=7, npiv=40, nfront=200)  # border=160


class TestWorkloadStrategy:
    def test_balances_workload(self):
        view = make_view([0.0, 1e6, 1e7, 1e7])
        strat = WorkloadStrategy(ScheduleParams(kmin_rows=4))
        asg = strat.select_slaves(FRONT, view, [1, 2, 3])
        # rank 1 (least loaded candidate) receives the most rows
        assert asg.rows.get(1, 0) >= asg.rows.get(2, 0)
        assert asg.total_rows() == FRONT.border

    def test_shares_scale_with_rows(self):
        view = make_view([0.0, 0.0, 0.0])
        strat = WorkloadStrategy()
        asg = strat.select_slaves(FRONT, view, [1, 2])
        for rank, rows in asg.rows.items():
            share = asg.shares[rank]
            assert share.workload == pytest.approx(rows * FRONT.flops_per_slave_row)
            assert share.memory == pytest.approx(rows * FRONT.nfront)

    def test_buffer_constraint_spreads_slaves(self):
        view = make_view([0.0] * 9)
        strat = WorkloadStrategy(ScheduleParams(kmin_rows=2, buffer_entries=FRONT.nfront * 20))
        asg = strat.select_slaves(FRONT, view, list(range(1, 9)))
        assert max(asg.rows.values()) <= 20
        assert asg.nslaves >= FRONT.border // 20

    def test_no_candidates_raises(self):
        with pytest.raises(ValueError):
            WorkloadStrategy().select_slaves(FRONT, make_view([0.0]), [])

    def test_post_assignment_balance(self):
        """After the decision, candidate workloads should be near-equal."""
        view = make_view([0.0, 2e5, 4e5, 8e5])
        strat = WorkloadStrategy(ScheduleParams(kmin_rows=1))
        asg = strat.select_slaves(FRONT, view, [0, 1, 2, 3])
        after = view.workload.copy()
        for rank, share in asg.shares.items():
            after[rank] += share.workload
        recipients = [r for r in range(4) if asg.rows.get(r, 0) > 0]
        spread = after[recipients].max() - after[recipients].min()
        assert spread <= 2 * FRONT.flops_per_slave_row + 1e-6


class TestMemoryStrategy:
    def test_balances_memory_not_workload(self):
        view = make_view([0.0, 0.0, 0.0], memories=[1e6, 0.0, 1e6])
        strat = MemoryStrategy(ScheduleParams(kmin_rows=1))
        asg = strat.select_slaves(FRONT, view, [0, 1, 2])
        assert asg.rows.get(1, 0) > asg.rows.get(0, 0)
        assert asg.rows.get(1, 0) > asg.rows.get(2, 0)

    def test_task_ordering_under_pressure(self):
        class T:
            def __init__(self, depth, entries, key):
                self.depth = depth
                self.activation_entries = entries
                self.order_key = key

        strat = MemoryStrategy(ScheduleParams(task_defer_factor=1.2))
        view = make_view([0, 0], memories=[100.0, 100.0])
        big = T(depth=5, entries=1000, key=0)
        small = T(depth=1, entries=10, key=1)
        # low local memory: depth-first (big/deep first)
        assert strat.order_ready_tasks([big, small], 0, view, my_memory=50.0)[0] is big
        # high local memory: smallest footprint first
        assert strat.order_ready_tasks([big, small], 0, view, my_memory=500.0)[0] is small


class TestRegistry:
    def test_create_by_name(self):
        assert isinstance(create_strategy("memory"), MemoryStrategy)
        assert isinstance(create_strategy("workload"), WorkloadStrategy)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            create_strategy("greedy")
