"""Chaos tests: fault injection against the real-socket backend.

Opt-in (``pytest -m backend``) like the other socket suites.  The DES
fault injector is exercised by tier-1 tests; here the same :class:`FaultPlan`
drives *actual TCP connections* — scripted connection resets tear down live
sockets mid-run and rank kills close every socket a rank owns — and the
replay must still carry every scripted decision to completion within the
backend's hard timeout.

The mechanisms used (increments, gossip) push state one-way: no blocking
request/response round-trips, so a lost frame costs accuracy, never
liveness.  Demand-driven mechanisms (snapshot) would need the full solver
recovery stack, which replays do not carry.
"""

import pytest

from repro import run_factorization
from repro.backends import ScriptRecorder, create_backend
from repro.backends.asyncio_net import AsyncioBackend
from repro.backends.des import DesBackend
from repro.faults import CrashFault, FaultPlan, ScriptedFault
from repro.faults.plan import SlowdownFault
from repro.matrices import generators as gen
from repro.solver.driver import SolverConfig
from repro.symbolic import analyze_matrix

pytestmark = pytest.mark.backend

NPROCS = 4
CHAOS_MECHANISMS = ["increments", "gossip"]


@pytest.fixture(scope="module")
def tree():
    return analyze_matrix(gen.grid_laplacian((10, 10, 4)), name="chaosgrid")


def record(tree, mechanism, seed=0):
    rec = ScriptRecorder()
    run_factorization(tree, NPROCS, mechanism=mechanism,
                      config=SolverConfig(seed=seed), recorder=rec)
    script = rec.script()
    # Faulty replays need the resilience envelope: a dropped frame must
    # surface as a NACK/retransmit, not a sequence-gap protocol error.
    script.resilience = True
    return script


class TestConnectionReset:
    @pytest.mark.parametrize("mechanism", CHAOS_MECHANISMS)
    def test_scripted_reset_mid_run(self, tree, mechanism):
        """The 8th STATE frame tears down its TCP connection.  The backend
        redials with backoff and the replay still completes every
        decision."""
        plan = FaultPlan(scripted=(ScriptedFault(nth=8, action="reset"),))
        script = record(tree, mechanism)
        out = create_backend("asyncio", fault_plan=plan).execute(script)
        assert out.decisions == script.decision_count()
        assert out.extras["link_resets"] >= 1
        # the reset frame itself is lost with the connection
        assert out.extras["faults_dropped"] >= 1

    def test_uniform_loss_completes(self, tree):
        """5% random STATE loss: per-link seeded schedules, so the drop
        count is reproducible run to run despite socket nondeterminism."""
        plan = FaultPlan.uniform_loss(0.05, seed_salt=3)
        script = record(tree, "increments")
        a = create_backend("asyncio", fault_plan=plan).execute(script)
        b = create_backend("asyncio", fault_plan=plan).execute(script)
        assert a.decisions == script.decision_count()
        assert a.extras["faults_dropped"] > 0
        assert a.extras["faults_dropped"] == b.extras["faults_dropped"]


class TestRankKill:
    @pytest.mark.parametrize("mechanism", CHAOS_MECHANISMS)
    def test_kill_and_restart_completes(self, tree, mechanism):
        """One rank dies at 30% of the (scaled) makespan — every one of its
        sockets is closed — and reboots after a downtime.  Frames sent to
        the corpse are dropped; its own replay stalls and resumes; the run
        still finishes inside the hard timeout with all decisions made."""
        script = record(tree, mechanism)
        plan = FaultPlan(
            crashes=(
                CrashFault(
                    rank=NPROCS - 1,
                    time=script.makespan * 0.3,
                    restart_after=script.makespan * 0.3,
                ),
            )
        )
        out = create_backend("asyncio", fault_plan=plan).execute(script)
        assert out.decisions == script.decision_count()
        assert out.extras["frames_handled"] > 0

    def test_kill_drops_frames_to_downed_rank(self, tree):
        """increments broadcasts continuously, so the downtime window must
        swallow at least one frame addressed to the dead rank."""
        script = record(tree, "increments")
        plan = FaultPlan(
            crashes=(
                CrashFault(
                    rank=NPROCS - 1,
                    time=script.makespan * 0.25,
                    restart_after=script.makespan * 0.4,
                ),
            )
        )
        out = create_backend("asyncio", fault_plan=plan).execute(script)
        assert out.decisions == script.decision_count()
        assert out.extras["faults_dropped"] > 0


class TestDeterminism:
    def test_des_fault_schedule_is_deterministic(self, tree):
        """Same plan + same script => byte-identical fault accounting on
        the DES replay (the reference the sockets are compared against)."""
        plan = FaultPlan.uniform_loss(0.10, seed_salt=7)
        script = record(tree, "increments")
        a = DesBackend(fault_plan=plan).execute(script)
        b = DesBackend(fault_plan=plan).execute(script)
        assert a.extras["faults_dropped"] == b.extras["faults_dropped"] > 0
        assert a.messages_by_type == b.messages_by_type
        assert a.decisions == b.decisions == script.decision_count()

    def test_salt_changes_the_schedule(self, tree):
        # salts 1 and 2 are known (deterministically) to drop different
        # frame counts for this script; any stable pair would do
        script = record(tree, "increments")
        a = DesBackend(fault_plan=FaultPlan.uniform_loss(0.10, seed_salt=1)).execute(script)
        b = DesBackend(fault_plan=FaultPlan.uniform_loss(0.10, seed_salt=2)).execute(script)
        assert a.extras["faults_dropped"] != b.extras["faults_dropped"]


class TestPlanGuards:
    def test_des_replay_rejects_crash_plans(self):
        plan = FaultPlan(crashes=(CrashFault(rank=1, time=1e-3),))
        with pytest.raises(ValueError, match="message faults only"):
            DesBackend(fault_plan=plan)

    def test_asyncio_rejects_slowdown_plans(self):
        plan = FaultPlan(
            slowdowns=(SlowdownFault(rank=1, start=0.0, duration=1e-3, factor=2.0),)
        )
        with pytest.raises(ValueError):
            AsyncioBackend(fault_plan=plan)
