"""Tests for the differential conformance suite.

The comparison logic and DES-side checks run in tier-1; the end-to-end
DES-vs-asyncio differentials are marked ``backend`` and run in the CI
smoke job (and locally via ``pytest -m backend``).
"""

import json

import pytest

from repro.backends.base import BackendRunResult
from repro.conformance import (
    ALL_MECHANISMS,
    EXACT_TYPES,
    TOLERANCE_FLOOR,
    VIEW_EXACT_MECHS,
    compare_results,
    default_tree,
    record_script,
    run_conformance,
    tolerance_ok,
)
from repro.solver.driver import SolverConfig


def result_for(script, mechanism="increments", backend="des", **over):
    base = dict(
        backend=backend,
        mechanism=mechanism,
        nprocs=script.nprocs,
        messages_by_type={"update": 100, "master_to_all": 3},
        bytes_by_type={"update": 6400, "master_to_all": 192},
        state_messages=103,
        decisions=script.decision_count(),
        final_views=[[(1.0, 2.0)] * script.nprocs] * script.nprocs,
        final_my_load=[(1.0, 2.0)] * script.nprocs,
        wall_seconds=0.1,
    )
    base.update(over)
    return BackendRunResult(**base)


@pytest.fixture(scope="module")
def tree():
    return default_tree((10, 10, 4))


@pytest.fixture(scope="module")
def script(tree):
    s, valid, failures = record_script(tree, 4, "increments",
                                       config=SolverConfig(seed=0))
    assert valid, failures
    return s


class TestPolicy:
    def test_tolerance_formula(self):
        assert tolerance_ok(0, TOLERANCE_FLOOR)
        assert not tolerance_ok(0, TOLERANCE_FLOOR + 1)
        assert tolerance_ok(100, 150)  # |50| <= max(8, 75)
        assert tolerance_ok(100, 200)  # |100| <= max(8, 100), boundary
        assert not tolerance_ok(100, 201)  # |101| > max(8, 100.5)
        assert not tolerance_ok(1000, 4000)

    def test_policy_covers_every_mechanism(self):
        assert set(EXACT_TYPES) == set(ALL_MECHANISMS)
        assert set(VIEW_EXACT_MECHS) <= set(ALL_MECHANISMS)


class TestCompare:
    def test_agreement_passes(self, script):
        a = result_for(script, backend="des")
        b = result_for(script, backend="asyncio")
        assert compare_results(script, {"des": a, "asyncio": b}) == []

    def test_exact_bucket_divergence_detected(self, script):
        a = result_for(script, backend="des")
        b = result_for(script, backend="asyncio",
                       messages_by_type={"update": 101, "master_to_all": 3})
        divs = compare_results(script, {"des": a, "asyncio": b})
        assert any(d.check == "exact:update" for d in divs)

    def test_tolerance_bucket_allows_slack(self, script):
        a = result_for(script, backend="des",
                       messages_by_type={"update": 100, "master_to_all": 3,
                                         "gossip_load": 40})
        b = result_for(script, backend="asyncio",
                       messages_by_type={"update": 100, "master_to_all": 3,
                                         "gossip_load": 55})
        divs = compare_results(script, {"des": a, "asyncio": b})
        assert divs == []  # gossip_load is not exact for increments

    def test_decision_mismatch_detected(self, script):
        a = result_for(script, backend="des")
        b = result_for(script, backend="asyncio",
                       decisions=script.decision_count() + 1)
        divs = compare_results(script, {"des": a, "asyncio": b})
        assert any(d.check == "decisions" for d in divs)

    def test_final_load_mismatch_detected(self, script):
        loads = [(1.0, 2.0)] * script.nprocs
        loads[2] = (1.5, 2.0)
        b = result_for(script, backend="asyncio", final_my_load=loads)
        divs = compare_results(
            script, {"des": result_for(script), "asyncio": b}
        )
        assert any(d.check == "final_my_load" for d in divs)

    def test_view_mismatch_detected_for_view_exact_mechs(self, script):
        views = [[(1.0, 2.0)] * script.nprocs for _ in range(script.nprocs)]
        views[1][3] = (9.0, 2.0)
        b = result_for(script, backend="asyncio", final_views=views)
        divs = compare_results(
            script, {"des": result_for(script), "asyncio": b}
        )
        assert any(d.check == "final_view" for d in divs)

    def test_fp_noise_tolerated(self, script):
        b = result_for(
            script, backend="asyncio",
            final_my_load=[(1.0 + 1e-9, 2.0 - 1e-9)] * script.nprocs,
        )
        divs = compare_results(
            script, {"des": result_for(script), "asyncio": b}
        )
        assert divs == []


class TestDesOnlyConformance:
    """The suite with backends=('des',): validates recording + replay +
    reporting without sockets, so it runs in tier-1."""

    def test_report_structure_and_artifact(self, tmp_path):
        out = tmp_path / "report.json"
        report = run_conformance(
            nprocs=4,
            mechanisms=["increments", "tree_agg"],
            backends=["des"],
            out_path=str(out),
        )
        assert report.ok, report.summary()
        data = json.loads(out.read_text())
        assert data["ok"] is True
        assert {v["mechanism"] for v in data["verdicts"]} == {
            "increments", "tree_agg"
        }
        for v in data["verdicts"]:
            assert v["source_valid"] is True
            assert v["results"]["des"]["decisions"] == v["script_decisions"]
        assert "PASS" in report.summary()


@pytest.mark.backend
class TestDifferentialConformance:
    """The real thing: DES vs asyncio sockets."""

    def test_all_mechanisms_conform(self):
        report = run_conformance(nprocs=4, seed=0)
        assert set(v.mechanism for v in report.verdicts) == set(ALL_MECHANISMS)
        assert report.ok, report.summary()

    def test_cli_smoke(self, tmp_path, capsys):
        from repro.conformance.__main__ import main

        out = tmp_path / "div.json"
        rc = main(["--mechanisms", "increments,gossip",
                   "--nprocs", "4", "--timeout", "60",
                   "--out", str(out)])
        printed = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in printed
        data = json.loads(out.read_text())
        assert data["ok"] is True
