"""Real-socket backend tests (opt-in: ``pytest -m backend``).

These spin up actual localhost TCP servers per rank, so they are excluded
from the default (tier-1) run by the ``-m "not backend"`` addopts and run
in the CI conformance smoke job instead.
"""

import pytest

from repro import run_factorization
from repro.backends import ScriptRecorder, create_backend
from repro.backends.asyncio_net import AsyncioBackend, BackendTimeout
from repro.matrices import generators as gen
from repro.solver.driver import SolverConfig
from repro.symbolic import analyze_matrix

pytestmark = pytest.mark.backend

NPROCS = 4


@pytest.fixture(scope="module")
def tree():
    return analyze_matrix(gen.grid_laplacian((10, 10, 4)), name="asyncgrid")


def record(tree, mechanism, seed=0):
    rec = ScriptRecorder()
    run_factorization(tree, NPROCS, mechanism=mechanism,
                      config=SolverConfig(seed=seed), recorder=rec)
    return rec.script()


class TestAsyncioBackend:
    def test_registered(self):
        assert isinstance(create_backend("asyncio"), AsyncioBackend)

    @pytest.mark.parametrize("mechanism", ["naive", "increments", "tree_agg"])
    def test_exact_buckets_match_des(self, tree, mechanism):
        from repro.conformance import EXACT_TYPES

        script = record(tree, mechanism)
        des = create_backend("des").execute(script)
        net = create_backend("asyncio").execute(script)
        assert net.decisions == script.decision_count() == des.decisions
        for mtype in EXACT_TYPES[mechanism]:
            assert net.messages_by_type.get(mtype, 0) == \
                des.messages_by_type.get(mtype, 0), mtype

    def test_final_my_load_matches_des(self, tree):
        script = record(tree, "increments")
        des = create_backend("des").execute(script)
        net = create_backend("asyncio").execute(script)
        for a, b in zip(des.final_my_load, net.final_my_load):
            assert a[0] == pytest.approx(b[0], rel=1e-6, abs=1e-6)
            assert a[1] == pytest.approx(b[1], rel=1e-6, abs=1e-6)

    def test_snapshot_protocol_over_sockets(self, tree):
        # The demand-driven mechanism exercises blocking, deferral, and the
        # reservation path; every scripted decision must still complete.
        script = record(tree, "snapshot")
        net = create_backend("asyncio").execute(script)
        assert net.decisions == script.decision_count()
        assert net.messages_by_type.get("master_to_slave", 0) > 0

    def test_frames_all_handled(self, tree):
        script = record(tree, "gossip")
        net = create_backend("asyncio").execute(script)
        assert net.extras["frames_sent"] == net.extras["frames_handled"]
        assert net.extras["frames_sent"] > 0

    def test_hard_timeout_fires(self, tree):
        script = record(tree, "periodic")
        # A replay cannot finish within a microscopic budget; the backend
        # must fail loudly rather than hang.
        backend = AsyncioBackend(hard_timeout=1e-3)
        with pytest.raises(BackendTimeout):
            backend.execute(script)

    def test_explicit_time_scale(self, tree):
        script = record(tree, "naive")
        backend = AsyncioBackend(time_scale=3e4)
        out = backend.execute(script)
        assert out.extras["time_scale"] == 3e4
        assert out.decisions == script.decision_count()
