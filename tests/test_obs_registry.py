"""Unit tests of the metrics registry (repro.obs.registry)."""

import json

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    Timeseries,
)


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("msgs")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("msgs")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("msgs", {"channel": "STATE"})
        b = reg.counter("msgs", {"channel": "STATE"})
        assert a is b
        assert reg.counter("msgs", {"channel": "DATA"}) is not a

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.counter("m", {"a": "1", "b": "2"})
        b = reg.counter("m", {"b": "2", "a": "1"})
        assert a is b


class TestGauge:
    def test_set_and_add(self):
        g = MetricsRegistry().gauge("busy")
        g.set(4.0)
        g.add(-1.5)
        assert g.value == 2.5


class TestHistogram:
    def test_observe_buckets_and_stats(self):
        h = Histogram(bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1]  # <=1, <=10, overflow
        assert h.count == 3
        assert h.sum == pytest.approx(55.5)
        assert (h.min, h.max) == (0.5, 50.0)
        assert h.mean == pytest.approx(18.5)

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())


class TestTimeseries:
    def test_samples_fold_into_buckets(self):
        ts = Timeseries(width=1.0)
        ts.sample(0.1, 2.0)
        ts.sample(0.9, 4.0)
        ts.sample(2.5, 1.0)
        assert len(ts) == 2
        p0, p1 = ts.points()
        assert p0 == {"time": 0.0, "count": 2.0, "sum": 6.0, "min": 2.0,
                      "max": 4.0, "mean": 3.0, "last": 4.0}
        assert p1["time"] == 2.0

    def test_nonpositive_width_rejected(self):
        with pytest.raises(ValueError):
            Timeseries(width=0.0)


class TestFamilySchema:
    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError, match="is a counter"):
            reg.gauge("m")

    def test_label_key_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("m", {"channel": "STATE"})
        with pytest.raises(ValueError, match="label keys"):
            reg.counter("m", {"cause": "threshold"})

    def test_families_iterates_sorted(self):
        reg = MetricsRegistry()
        reg.gauge("b")
        reg.counter("a")
        assert list(reg.families()) == [("a", "counter"), ("b", "gauge")]
        assert len(reg) == 2
        assert "a" in reg and "z" not in reg


class TestExportRoundTrip:
    def populated(self):
        reg = MetricsRegistry()
        reg.counter("msgs", {"channel": "STATE"}).inc(7)
        reg.counter("msgs", {"channel": "DATA"}).inc(3)
        reg.gauge("busy", {"rank": "0"}).set(1.25)
        reg.histogram("wait", buckets=(0.1, 1.0)).observe(0.5)
        ts = reg.timeseries("rate", bucket_width=0.5)
        ts.sample(0.2, 1.0)
        ts.sample(1.4, 2.0)
        reg.samples("acc").append(0.3, {"master": 1.0, "err": -0.25})
        return reg

    def test_to_dict_is_json_serializable_and_deterministic(self):
        a = self.populated().to_dict()
        b = self.populated().to_dict()
        assert a["schema"] == 1
        assert json.dumps(a, sort_keys=False) == json.dumps(b, sort_keys=False)

    def test_round_trip_preserves_everything(self):
        reg = self.populated()
        back = MetricsRegistry.from_dict(reg.to_dict())
        assert back.to_dict() == reg.to_dict()

    def test_round_trip_survives_json(self):
        doc = json.loads(json.dumps(self.populated().to_dict()))
        assert MetricsRegistry.from_dict(doc).to_dict() == \
            self.populated().to_dict()

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            MetricsRegistry.from_dict({"schema": 99, "families": {}})


class TestExportOrdering:
    """Exports must not depend on series/family creation order."""

    def test_series_creation_order_does_not_change_export(self):
        a = MetricsRegistry()
        a.counter("m", {"channel": "STATE"}).inc(1)
        a.counter("m", {"channel": "DATA"}).inc(2)
        b = MetricsRegistry()
        b.counter("m", {"channel": "DATA"}).inc(2)
        b.counter("m", {"channel": "STATE"}).inc(1)
        assert json.dumps(a.to_dict()) == json.dumps(b.to_dict())
        assert a.to_prometheus() == b.to_prometheus()

    def test_family_creation_order_does_not_change_export(self):
        a = MetricsRegistry()
        a.counter("x").inc()
        a.gauge("y").set(1.0)
        b = MetricsRegistry()
        b.gauge("y").set(1.0)
        b.counter("x").inc()
        assert json.dumps(a.to_dict()) == json.dumps(b.to_dict())

    def test_label_sets_sorted_within_family(self):
        reg = MetricsRegistry()
        for t in ("zeta", "alpha", "mid"):
            reg.counter("m", {"type": t}).inc()
        series = reg.to_dict()["families"]["m"]["series"]
        assert [s["labels"]["type"] for s in series] == \
            ["alpha", "mid", "zeta"]


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("msgs", {"channel": "STATE"}).inc(7)
        reg.gauge("busy").set(1.5)
        text = reg.to_prometheus()
        assert "# TYPE repro_msgs counter" in text
        assert 'repro_msgs{channel="STATE"} 7' in text
        assert "repro_busy 1.5" in text

    def test_histogram_exposition_is_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("wait", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        text = reg.to_prometheus()
        assert 'repro_wait_bucket{le="1"} 1' in text
        assert 'repro_wait_bucket{le="10"} 2' in text
        assert 'repro_wait_bucket{le="+Inf"} 3' in text
        assert "repro_wait_count 3" in text

    def test_timeseries_summarized_samples_omitted(self):
        reg = MetricsRegistry()
        reg.timeseries("rate").sample(0.1, 2.0)
        reg.samples("acc").append(0.1, {"x": 1.0})
        text = reg.to_prometheus(prefix="x_")
        assert "x_rate_last 2" in text
        assert "x_rate_points 1" in text
        assert "acc" not in text

    def test_empty_registry(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_help_lines_and_escaping(self):
        reg = MetricsRegistry()
        reg.counter("m", help="counts \\ things\nacross lines").inc()
        text = reg.to_prometheus()
        assert "# HELP repro_m counts \\\\ things\\nacross lines\n" in text
        assert "# TYPE repro_m counter\n" in text

    def test_label_value_escaping(self):
        reg = MetricsRegistry()
        reg.counter("m", {"type": 'a"b\\c\nd'}).inc()
        text = reg.to_prometheus()
        assert 'repro_m{type="a\\"b\\\\c\\nd"} 1' in text

    def test_no_help_means_no_help_line(self):
        reg = MetricsRegistry()
        reg.counter("m").inc()
        assert "# HELP" not in reg.to_prometheus()
