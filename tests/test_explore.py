"""Interleaving explorer: DPOR soundness, oracles, mutant hunt, replay."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.explore import (
    ExploreReport,
    Violation,
    explore_mechanism,
    independent,
    load_counterexample,
    minimize_schedule,
    replay_counterexample,
    tiny_tree,
)
from repro.analysis.mutants import NonCommutativeIncrements, install_mutants
from repro.mechanisms.registry import available_mechanisms
from repro.simcore import ScheduleController
from repro.solver.driver import SolverConfig, run_factorization
from repro.solver.validate import validate_result

PAPER_MECHANISMS = ("naive", "increments", "snapshot")


class TestControllerTransparency:
    def test_default_controller_is_byte_identical(self):
        """A pass-through controller must not perturb the baseline run.

        This is the "paper-table outputs stay identical with exploration
        off" guarantee, measured at its strongest point: even with the
        choice-point hook *installed*, default picks reproduce the
        uncontrolled engine exactly.
        """
        tree = tiny_tree()
        config = SolverConfig(seed=3)
        base = run_factorization(tree, 3, mechanism="increments", config=config)
        ctrl = ScheduleController()
        controlled = run_factorization(
            tree, 3, mechanism="increments", config=config, controller=ctrl
        )
        assert controlled.factorization_time == base.factorization_time
        assert controlled.decisions == base.decisions
        assert controlled.to_dict() == base.to_dict()


class TestDporSoundness:
    def test_reduced_exploration_matches_full_enumeration(self):
        """ISSUE satellite: DPOR visits the same distinct final states.

        On ``naive`` at nprocs=2 with a bounded branching window (the
        unreduced space is infinite otherwise: delaying a delivery creates
        ever-new timer interleavings), sleep-set DPOR must reach exactly
        the final states full enumeration reaches — with far fewer runs.
        """
        tree = tiny_tree(levels=1)
        kw = dict(
            tree=tree,
            depth_budget=8,
            max_runs=5000,
            prune=False,
            probes=False,
            minimize=False,
        )
        full = explore_mechanism("naive", 2, dpor=False, **kw)
        reduced = explore_mechanism("naive", 2, dpor=True, **kw)
        # Both frontiers drained within max_runs (the depth budget bounds
        # the branching window, so `complete` is deliberately False here).
        assert full.runs < 5000 and reduced.runs < 5000
        assert full.ok and reduced.ok
        assert reduced.final_states == full.final_states
        assert reduced.runs < full.runs

    def test_independence_is_rank_disjointness(self):
        d01 = ("d", 0, 1, 1)
        d21 = ("d", 2, 1, 1)
        d20 = ("d", 2, 0, 1)
        i1 = ("i", 1, -1, -1)
        assert independent(d01, d20)  # touch ranks {1} vs {0}
        assert not independent(d01, d21)  # both deliver into rank 1
        assert not independent(d01, i1)  # internal event on rank 1
        assert independent(d20, i1)


class TestExhaustiveSmallScale:
    @pytest.mark.parametrize("mechanism", PAPER_MECHANISMS)
    def test_paper_mechanisms_exhaustive_at_two_procs(self, mechanism):
        """Acceptance: visited-set-complete exploration, all oracles green."""
        report = explore_mechanism(mechanism, 2, tree=tiny_tree(levels=1))
        assert report.complete, report.summary()
        assert report.ok, report.summary()
        assert report.runs > 1  # it actually branched

    @pytest.mark.parametrize(
        "mechanism",
        sorted(set(available_mechanisms()) - set(PAPER_MECHANISMS)),
    )
    def test_remaining_mechanisms_explore_clean(self, mechanism):
        report = explore_mechanism(mechanism, 2, tree=tiny_tree(levels=1))
        assert report.complete, report.summary()
        assert report.ok, report.summary()


class TestMutantHunt:
    """The seeded ordering bug: invisible to single-schedule runs."""

    def test_mutant_is_clean_on_the_default_schedule(self):
        install_mutants()
        tree = tiny_tree(levels=1)
        result = run_factorization(
            tree, 3, mechanism="nc_increments", config=SolverConfig(seed=0)
        )
        assert validate_result(result, tree).ok

    def test_mutant_is_clean_at_two_procs(self):
        # With two processes every racing pair shares a FIFO link, so the
        # non-commutativity is unreachable: the bug needs a third party.
        install_mutants()
        report = explore_mechanism("nc_increments", 2, tree=tiny_tree(levels=1))
        assert report.complete and report.ok

    def test_explorer_finds_the_mutant_at_three_procs(self, tmp_path):
        install_mutants()
        report = explore_mechanism("nc_increments", 3, tree=tiny_tree(levels=1))
        assert not report.ok
        v = report.violations[0]
        assert v.invariant == "view_coherence"
        assert v.minimized
        assert v.schedule  # replay coordinates present
        # The link-starvation probes make this cheap: no DFS marathon.
        assert report.runs + report.probe_runs < 200

        # The minimized counterexample replays from its JSON artifact.
        path = tmp_path / "ce.json"
        path.write_text(json.dumps(v.to_dict()))
        replayed = replay_counterexample(load_counterexample(str(path)))
        assert replayed is not None
        assert replayed.invariant == "view_coherence"

    def test_conformance_replay_hook(self, tmp_path):
        from repro.conformance import replay_explored_schedule

        install_mutants()
        report = explore_mechanism("nc_increments", 3, tree=tiny_tree(levels=1))
        assert not report.ok
        path = tmp_path / "ce.json"
        path.write_text(json.dumps(report.violations[0].to_dict()))
        confirmed = replay_explored_schedule(str(path))
        assert confirmed is not None and confirmed.invariant == "view_coherence"

    def test_parent_mechanism_survives_the_same_hunt(self):
        # Sanity: the probe stage that kills the mutant passes the real
        # increments mechanism — the finding is the bug, not the schedule.
        report = explore_mechanism("increments", 3, tree=tiny_tree(levels=1),
                                   max_runs=300)
        assert report.ok


class TestCrashBranching:
    def test_increments_survives_crash_points(self):
        report = explore_mechanism(
            "increments", 2, tree=tiny_tree(levels=1),
            crash_rank=1, crash_points=2,
        )
        assert report.crash_plans > 0
        assert report.ok, report.summary()


class TestMinimization:
    def test_minimize_drops_irrelevant_choices(self):
        schedule = [("d", 0, 1, 1), ("d", 1, 0, 1), ("i", 0, -1, -1)]

        def still_fails(s):
            return ("d", 1, 0, 1) in s

        out = minimize_schedule(schedule, still_fails)
        assert out == [("d", 1, 0, 1)]

    def test_minimize_keeps_a_failing_pair(self):
        schedule = [("d", 0, 1, 1), ("d", 1, 0, 1), ("d", 2, 0, 1)]

        def still_fails(s):
            return ("d", 0, 1, 1) in s and ("d", 2, 0, 1) in s

        out = minimize_schedule(schedule, still_fails)
        assert out == [("d", 0, 1, 1), ("d", 2, 0, 1)]


class TestReportShape:
    def test_report_and_violation_round_trip_to_json(self):
        report = explore_mechanism("oracle", 2, tree=tiny_tree(levels=1))
        d = json.loads(json.dumps(report.to_dict()))
        assert d["mechanism"] == "oracle"
        assert d["complete"] is True
        v = Violation(
            invariant="x", detail="y", trace=[], schedule=[("d", 0, 1, 1)],
            mechanism="naive", nprocs=2, problem="tiny1", seed=0,
        )
        assert json.loads(json.dumps(v.to_dict()))["schedule"] == [[
            "d", 0, 1, 1]]


class TestCLI:
    def test_explore_clean_exit_zero(self, capsys):
        from repro.analysis.__main__ import main

        rc = main([
            "explore", "--mechanism", "naive", "--nprocs", "2",
            "--tree-levels", "1", "--require-complete",
        ])
        assert rc == 0
        assert "complete" in capsys.readouterr().out

    def test_explore_json_shape(self, capsys):
        from repro.analysis.__main__ import main

        rc = main([
            "explore", "--mechanism", "oracle", "--nprocs", "2",
            "--tree-levels", "1", "--json",
        ])
        out = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert out["tool"] == "explore"
        assert out["reports"][0]["mechanism"] == "oracle"

    def test_mutant_cli_round_trip(self, tmp_path, capsys):
        from repro.analysis.__main__ import main

        ce = tmp_path / "ce.json"
        rc = main([
            "explore", "--mechanism", "nc_increments", "--nprocs", "3",
            "--tree-levels", "1", "--counterexample", str(ce),
        ])
        assert rc == 1  # the seeded bug must be found
        assert ce.exists()
        capsys.readouterr()
        assert main(["explore", "--replay", str(ce)]) == 0
        assert "reproduced" in capsys.readouterr().out
