"""Unit tests of the resilience layer (``MechanismConfig.resilience``).

The layer has two halves:

* a generic sequence-number envelope in :class:`repro.mechanisms.base.
  Mechanism` — duplicate/stale discard, gap detection, NACK / resync /
  absolute-sync repair, periodic refresh — exercised here through the
  maintained-view mechanisms;
* protocol-specific hardening of the demand-driven snapshot — gather
  retransmission, blocked-participant liveness, failure suspicion and
  resurrection, acknowledged reservations — exercised through scripted
  fault plans that lose exactly the targeted message.
"""

import pytest

from repro.faults import CrashFault, FaultInjector, FaultPlan, LinkFault, ScriptedFault
from repro.mechanisms import (
    IncrementsMechanism,
    Load,
    MechanismConfig,
    NaiveMechanism,
    SnapshotMechanism,
)
from repro.simcore import NetworkConfig
from repro.simcore.network import Channel

from helpers import make_world


def rworld(nprocs, mech_cls, plan=None, *, config=None, **mech_kw):
    cfg = MechanismConfig(resilience=True, threshold=Load(0.5, 0.5), **mech_kw)
    sim, net, procs = make_world(
        nprocs, lambda: mech_cls(cfg), config=config or NetworkConfig()
    )
    injector = None
    if plan is not None:
        injector = FaultInjector(sim, plan)
        net.install_injector(injector)
        injector.install_process_faults(procs)
    for p in procs:
        p.mechanism.initialize_view([Load.ZERO] * nprocs)
    return sim, net, procs, injector


def stat(procs, key):
    return sum(p.mechanism.resilience_stats[key] for p in procs)


# ----------------------------------------------------- sequence envelope


class TestSequenceEnvelope:
    def test_fault_free_traffic_is_transparent(self):
        sim, net, procs, _ = rworld(3, NaiveMechanism)
        procs[0].mechanism.on_local_change(Load(10.0, 0.0))
        sim.run()
        for p in procs:
            assert p.mechanism.view.get(0).workload == 10.0
        assert stat(procs, "duplicates_dropped") == 0
        assert stat(procs, "nacks_sent") == 0

    def test_duplicates_are_dropped(self):
        plan = FaultPlan(link_faults=(
            LinkFault(channel=Channel.STATE, dup_prob=1.0, delay=1e-4),
        ))
        sim, net, procs, _ = rworld(3, IncrementsMechanism, plan)
        procs[0].mechanism.on_local_change(Load(10.0, 0.0))
        sim.run()
        # without dedup the duplicated UpdateIncrement would double the view
        for p in procs[1:]:
            assert p.mechanism.view.get(0).workload == 10.0
        assert stat(procs, "duplicates_dropped") == 2

    def test_duplicates_corrupt_increments_without_the_layer(self):
        """The contrast case: resilience off + a duplicated delta message
        double-counts (this is why the envelope exists)."""
        cfg = MechanismConfig(resilience=False, threshold=Load(0.5, 0.5))
        sim, net, procs = make_world(3, lambda: IncrementsMechanism(cfg))
        net.install_injector(FaultInjector(sim, FaultPlan(link_faults=(
            LinkFault(channel=Channel.STATE, dup_prob=1.0, delay=1e-4),
        ))))
        for p in procs:
            p.mechanism.initialize_view([Load.ZERO] * 3)
        procs[0].mechanism.on_local_change(Load(10.0, 0.0))
        sim.run()
        assert procs[1].mechanism.view.get(0).workload == 20.0

    def test_gap_is_nacked_and_resynced(self):
        """Drop one Update mid-stream: the receiver NACKs the gap and the
        sender answers with its absolute state — the view ends exact."""
        plan = FaultPlan(scripted=(
            # the second STATE message 0 -> 1 is P0's second Update
            ScriptedFault(nth=2, action="drop", src=0, dst=1),
        ))
        sim, net, procs, inj = rworld(3, NaiveMechanism, plan)
        for i, w in enumerate([10.0, 25.0, 40.0]):
            sim.schedule_at(
                1e-3 * (i + 1),
                lambda w=w: procs[0].mechanism.on_local_change(
                    Load(w, 0.0) - procs[0].mechanism.my_load
                ),
            )
        sim.run()
        assert inj.stats.dropped == 1
        assert procs[1].mechanism.view.get(0).workload == 40.0
        assert procs[1].mechanism.resilience_stats["nacks_sent"] >= 1
        assert procs[0].mechanism.resilience_stats["syncs_sent"] >= 1
        assert procs[0].mechanism.resilience_stats["resync_requests_received"] >= 1
        # the unaffected link never saw a gap
        assert procs[2].mechanism.resilience_stats["nacks_sent"] == 0

    def test_trailing_drop_is_repaired_by_refresh(self):
        """A dropped *last* message leaves no sequence gap to NACK; the
        periodic absolute refresh bounds the staleness instead."""
        plan = FaultPlan(scripted=(
            ScriptedFault(nth=3, action="drop", src=0, dst=1),
        ))
        sim, net, procs, _ = rworld(
            3, NaiveMechanism, plan, refresh_every=3,
        )
        for i in range(3):  # third update is dropped toward P1...
            sim.schedule_at(
                1e-3 * (i + 1),
                lambda w=10.0 * (i + 1): procs[0].mechanism.on_local_change(
                    Load(w, 0.0)
                ),
            )
        sim.run()
        # ...but the third update also triggers the refresh sync
        assert procs[0].mechanism.resilience_stats["syncs_sent"] >= 2
        assert procs[1].mechanism.view.get(0).workload == pytest.approx(60.0)
        assert procs[1].mechanism.resilience_stats["syncs_received"] >= 1

    def test_silent_peer_gap_is_abandoned(self):
        """If the sender of a gap crashes before answering the NACK, the
        retries stop after ``dead_after`` attempts (liveness over
        freshness) and the view keeps its last coherent value."""
        plan = FaultPlan(
            # P0's second delta toward P1 is lost; P0 dies just after its
            # third broadcast, before any resync can be answered.
            scripted=(ScriptedFault(nth=2, action="drop", src=0, dst=1),),
            crashes=(CrashFault(rank=0, time=3.1e-3),),
        )
        sim, net, procs, _ = rworld(
            3, IncrementsMechanism, plan, dead_after=3, retry_timeout=1e-3,
            config=NetworkConfig(latency=1e-5),
        )
        for i, w in enumerate([10.0, 15.0, 15.0]):
            sim.schedule_at(
                1e-3 * (i + 1),
                lambda w=w: procs[0].mechanism.on_local_change(Load(w, 0.0)),
            )
        sim.run()
        assert procs[1].mechanism.resilience_stats["nacks_sent"] >= 1
        assert procs[1].mechanism.resilience_stats["gaps_abandoned"] == 1
        # deltas 1 and 3 were applied, delta 2 is permanently lost
        assert procs[1].mechanism.view.get(0).workload == 25.0
        # the unaffected receiver got everything
        assert procs[2].mechanism.view.get(0).workload == 40.0


# ------------------------------------------------------ snapshot hardening


def snapshot_decide(sim, proc, assignments, views, at=0.0):
    def cb(view):
        views.append((proc.rank, view))
        proc.mechanism.record_decision(assignments)
        proc.mechanism.decision_complete()

    sim.schedule_at(at, lambda: proc.mechanism.request_view(cb))


class TestSnapshotHardening:
    def test_lost_start_snp_is_retransmitted(self):
        plan = FaultPlan(scripted=(
            ScriptedFault(nth=1, action="drop", src=0, dst=2,
                          channel=Channel.STATE),
        ))
        sim, net, procs, _ = rworld(
            3, SnapshotMechanism, plan, retry_timeout=1e-3,
        )
        views = []
        snapshot_decide(sim, procs[0], {1: Load(5.0, 0.0)}, views)
        sim.run()
        assert len(views) == 1
        m0 = procs[0].mechanism
        assert m0.resilience_stats["start_snp_retransmissions"] >= 1
        assert not m0.blocks_tasks()
        assert procs[1].mechanism.my_load.workload == 5.0

    def test_lost_answer_is_recovered(self):
        # 2 -> 0: the Snp answer to the gather is the first STATE message
        plan = FaultPlan(scripted=(
            ScriptedFault(nth=1, action="drop", src=2, dst=0,
                          channel=Channel.STATE),
        ))
        sim, net, procs, _ = rworld(
            3, SnapshotMechanism, plan, retry_timeout=1e-3,
        )
        views = []
        snapshot_decide(sim, procs[0], {}, views)
        sim.run()
        assert len(views) == 1
        assert stat(procs, "suspected_dead") == 0

    def test_lost_reservation_is_retransmitted_and_acked(self):
        # 0 -> 1 in a 3-proc run: StartSnp, then MasterToSlave, then EndSnp
        plan = FaultPlan(scripted=(
            ScriptedFault(nth=2, action="drop", src=0, dst=1,
                          channel=Channel.STATE),
        ))
        sim, net, procs, _ = rworld(
            3, SnapshotMechanism, plan, retry_timeout=1e-3,
        )
        views = []
        snapshot_decide(sim, procs[0], {1: Load(7.0, 0.0)}, views)
        sim.run()
        m0, m1 = procs[0].mechanism, procs[1].mechanism
        assert m0.resilience_stats["mts_retransmissions"] >= 1
        assert not m0._mts_pending  # the retransmission was acked
        assert m1.my_load.workload == 7.0

    def test_duplicated_reservation_applies_once(self):
        plan = FaultPlan(link_faults=(
            LinkFault(src=0, dst=1, channel=Channel.STATE,
                      dup_prob=1.0, delay=1e-4),
        ))
        sim, net, procs, _ = rworld(3, SnapshotMechanism, plan)
        views = []
        snapshot_decide(sim, procs[0], {1: Load(7.0, 0.0)}, views)
        sim.run()
        assert procs[1].mechanism.my_load.workload == 7.0

    def test_crashed_participant_is_suspected_and_excluded(self):
        """P2 crashes mid-protocol-free window: P0's gather suspects it
        after ``dead_after`` silent retries and completes without it."""
        sim, net, procs, inj = rworld(
            4, SnapshotMechanism, FaultPlan(crashes=(CrashFault(2, 1e-4),)),
            retry_timeout=1e-3, dead_after=3,
        )
        views = []
        snapshot_decide(sim, procs[0], {1: Load(5.0, 0.0)}, views, at=1e-3)
        sim.run()
        m0 = procs[0].mechanism
        assert len(views) == 1, "gather must complete despite the dead rank"
        assert 2 in m0._presumed_dead
        assert m0.resilience_stats["suspected_dead"] == 1
        assert not m0.blocks_tasks()
        # the gather simply misses the dead rank's contribution
        assert views[0][1].get(2).workload == 0.0

    def test_late_message_triggers_rejoin_not_resurrection(self):
        """Suspicion is not permanent, but hearing a suspect again is not
        enough either: the suspect is told to re-announce (SuspectNotice)
        and only its RejoinRequest — carrying its authoritative load —
        clears the suspicion.  Regression for the PR-1 silent-resurrection
        bug, where any stale message restored full trust."""
        sim, net, procs, _ = rworld(
            3, SnapshotMechanism, None, retry_timeout=1e-3, dead_after=3,
        )
        m0, m2 = procs[0].mechanism, procs[2].mechanism
        m0._suspect_dead(2)  # e.g. after a long silence during a gather
        assert 2 in m0._presumed_dead
        views = []
        # P2 initiating a snapshot proves it alive; P0 reminds it to rejoin
        # instead of trusting it outright.  P0's own later gather must wait
        # for (and get) P2's answer again.
        snapshot_decide(sim, procs[2], {}, views, at=1e-3)
        snapshot_decide(sim, procs[0], {}, views, at=0.05)
        sim.run()
        assert m0.resilience_stats["suspect_notices_sent"] == 1
        assert m2.resilience_stats["suspect_notices_received"] == 1
        assert m2.resilience_stats["rejoins_sent"] >= 1
        assert m0.resilience_stats["rejoins_received"] >= 1
        assert "resurrections" not in m0.resilience_stats
        assert 2 not in m0._presumed_dead
        assert 2 not in m0.suspected_peers
        assert [r for r, _ in views] == [2, 0]
        for p in procs:
            assert not p.mechanism.blocks_tasks()

    def test_fault_free_resilient_snapshot_matches_plain(self):
        """With no faults, the hardened protocol reaches the same view and
        the same final loads as the paper-faithful one."""

        def run(resilience):
            cfg = MechanismConfig(resilience=resilience)
            sim, net, procs = make_world(3, lambda: SnapshotMechanism(cfg))
            init = [Load(float(r), 0.0) for r in range(3)]
            for p in procs:
                p.mechanism.initialize_view(init)
            views = []
            snapshot_decide(sim, procs[0], {1: Load(5.0, 0.0)}, views)
            sim.run()
            return (
                [views[0][1].get(r).workload for r in range(3)],
                [p.mechanism.my_load.workload for p in procs],
            )

        assert run(False) == run(True)
