"""Tests of the experiment harness (fast scale): tables, figures, report."""

import pytest

from repro.experiments import (
    ExperimentRunner,
    ExperimentScale,
    TableResult,
    figure1,
    figure2,
    side_by_side,
    table1_2,
    table3,
    table4,
)
from repro.experiments.report import _fmt
from repro.matrices import collection


@pytest.fixture(scope="module")
def fast_runner():
    return ExperimentRunner(scale=ExperimentScale(fast=True))


class TestReport:
    def test_render_alignment(self):
        t = TableResult("T", ["A", "B"], [["x", 1], ["yy", 22]])
        lines = t.render().splitlines()
        assert lines[0] == "T"
        assert "A" in lines[2] and "B" in lines[2]
        assert len({len(l) for l in lines[2:4]}) >= 1

    def test_cell_lookup(self):
        t = TableResult("T", ["M", "v"], [["a", 1], ["b", 2]])
        assert t.cell("a", "v") == 1
        with pytest.raises(KeyError):
            t.cell("zz", "v")
        with pytest.raises(KeyError):
            t.cell("a", "nope")

    def test_notes_rendered(self):
        t = TableResult("T", ["A"], [["x"]], notes=["hello"])
        assert "note: hello" in t.render()

    def test_side_by_side(self):
        a = TableResult("A", ["x"], [["1"]])
        b = TableResult("B", ["y"], [["2"], ["3"]])
        text = side_by_side([a, b])
        assert "A" in text.splitlines()[0] and "B" in text.splitlines()[0]

    def test_float_formatting(self):
        assert _fmt(0.0) == "0"
        assert _fmt(3.14159) == "3.14"
        assert _fmt(123456.0) == "1.23e+05"
        assert _fmt("s") == "s"


class TestRunnerCaching:
    def test_same_key_returns_cached_object(self, fast_runner):
        a = fast_runner.run("TWOTONE", 8, "increments", "workload")
        b = fast_runner.run("TWOTONE", 8, "increments", "workload")
        assert a is b
        assert fast_runner.runs_executed >= 1

    def test_different_mechanism_not_cached(self, fast_runner):
        a = fast_runner.run("TWOTONE", 8, "increments", "workload")
        b = fast_runner.run("TWOTONE", 8, "snapshot", "workload")
        assert a is not b

    def test_scale_properties(self):
        assert ExperimentScale(fast=True).small_procs == (8, 16)
        assert ExperimentScale(fast=False).large_procs == (64, 128)


class TestTables:
    def test_table1_2_lists_all_problems(self):
        t1, t2 = table1_2()
        assert len(t1.rows) == 8 and len(t2.rows) == 3
        assert t1.cell("GUPTA3", "Order(paper)") == 16783

    def test_table3_structure(self, fast_runner):
        t = table3(fast_runner)
        assert len(t.rows) == 11
        # large problems have '-' in the smallest column
        assert t.cell("AUDIKW_1", "8 procs") == "-"
        assert isinstance(t.cell("AUDIKW_1", "16 procs"), int)

    def test_table4_fast(self, fast_runner):
        a, b = table4(fast_runner)
        assert len(a.rows) == 8 and len(b.rows) == 8
        for row in a.rows:
            # all three mechanisms produce positive peaks
            assert all(v > 0 for v in row[1:])

    def test_table4_naive_not_best_overall(self, fast_runner):
        a, b = table4(fast_runner)
        wins = 0
        total = 0
        for tab in (a, b):
            for p in collection.suite("small"):
                nai = tab.cell(p.name, "naive")
                inc = tab.cell(p.name, "Increments based")
                total += 1
                if nai >= inc * 0.999:
                    wins += 1
        assert wins >= total * 0.7


class TestFigures:
    def test_figure1_naive_double_selects(self):
        fig = figure1("naive")
        assert fig.double_selection
        assert fig.view_of_p2[0] == fig.view_of_p2[1]
        assert "DOUBLE SELECTION" in fig.render()

    def test_figure1_increments_avoids_double(self):
        fig = figure1("increments")
        assert not fig.double_selection
        assert fig.view_of_p2[1] > 1000

    def test_figure1_rejects_snapshot(self):
        with pytest.raises(ValueError):
            figure1("snapshot")

    def test_figure2_contains_all_kinds(self):
        fig = figure2(nprocs=4)
        assert fig.type_histogram.get("subtree", 0) > 0
        assert fig.type_histogram.get("type2", 0) > 0
        assert "SUBTREE" in fig.text
        assert "master=P" in fig.text

    def test_figure2_named_problem(self):
        fig = figure2(nprocs=4, problem="TWOTONE")
        assert fig.nprocs == 4


class TestCLI:
    def test_main_fast_table3(self, capsys, tmp_path):
        from repro.experiments.__main__ import main

        out = tmp_path / "out.txt"
        rc = main(["table3", "--fast", "--out", str(out)])
        assert rc == 0
        assert "Table 3" in out.read_text()

    def test_main_rejects_unknown_target(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["table99"])

    def test_main_figures(self, capsys):
        from repro.experiments.__main__ import main

        rc = main(["figure1"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "DOUBLE SELECTION" in captured.out

    def test_main_json_export(self, tmp_path, capsys):
        import json

        from repro.experiments.__main__ import main

        j = tmp_path / "runs.json"
        rc = main(["table4", "--fast", "--json", str(j)])
        assert rc == 0
        data = json.loads(j.read_text())
        assert len(data["runs"]) > 0
        rec = data["runs"][0]
        assert {"problem", "nprocs", "mechanism",
                "factorization_time"} <= set(rec)
